"""Selective-Huffman statistical baseline (Jas, Ghosh-Dastidar & Touba).

The paper's related-work section lists statistical coding among the
classical alternatives; this module implements the selective variant
used in the scan-compression literature: the stream splits into
``block_bits``-wide blocks, don't-cares are merged greedily so ternary
blocks collapse onto few concrete patterns, and only the ``coded_patterns``
most frequent patterns receive Huffman codes (prefixed ``1``); all other
blocks ship raw (prefixed ``0``).

The pattern table itself is assumed to live in the on-chip decoder, as
in the original scheme, so its bits are not charged to the stream; the
``extra`` diagnostics report the table size for honest area accounting.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..bitstream import BitReader, BitWriter, TernaryVector, to_characters
from .base import BaselineResult, Compressor, make_result

__all__ = [
    "HuffmanConfig",
    "SelectiveHuffmanCompressor",
    "build_huffman_codes",
    "decode_selective_huffman",
]


@dataclass(frozen=True)
class HuffmanConfig:
    """Block width and how many patterns receive Huffman codes."""

    block_bits: int = 8
    coded_patterns: int = 16

    def __post_init__(self) -> None:
        if self.block_bits < 1:
            raise ValueError("block_bits must be >= 1")
        if self.coded_patterns < 1:
            raise ValueError("coded_patterns must be >= 1")


class SelectiveHuffmanCompressor(Compressor):
    """X-merging block coder with a selective Huffman back end."""

    name = "Huffman"

    def __init__(self, config: HuffmanConfig = HuffmanConfig()) -> None:
        self.config = config

    def compress(self, stream: TernaryVector) -> BaselineResult:
        cfg = self.config
        blocks = to_characters(stream, cfg.block_bits)
        concrete = _merge_blocks(blocks, cfg.block_bits)
        counts: Dict[int, int] = {}
        for b in concrete:
            counts[b] = counts.get(b, 0) + 1
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        coded = dict(ranked[: cfg.coded_patterns])
        codes = build_huffman_codes(coded)
        writer = BitWriter()
        for b in concrete:
            if b in codes:
                writer.write_bit(1)
                code, width = codes[b]
                writer.write(code, width)
            else:
                writer.write_bit(0)
                writer.write(b, cfg.block_bits)
        assigned = _blocks_to_stream(concrete, cfg.block_bits, len(stream))
        table_bits = len(codes) * cfg.block_bits
        return make_result(
            self,
            stream,
            writer.bit_length,
            assigned,
            extra={
                "distinct_patterns": len(counts),
                "coded_patterns": len(codes),
                "decoder_table_bits": table_bits,
                "codes": codes,
                "bits": writer.getbits(),
            },
        )


def _merge_blocks(blocks: List[TernaryVector], width: int) -> List[int]:
    """Greedy X-merging: map each ternary block onto a popular pattern.

    Fully specified blocks keep their value; a block with X bits adopts
    the most frequent already-seen compatible pattern, falling back to a
    zero fill.  Two passes: the first builds frequencies from the fully
    specified blocks, the second assigns.
    """
    counts: Dict[int, int] = {}
    for b in blocks:
        if b.is_fully_specified:
            v = b.to_int()
            counts[v] = counts.get(v, 0) + 1
    out: List[int] = []
    for b in blocks:
        if b.is_fully_specified:
            v = b.to_int()
        else:
            care = b.care_mask
            value = b.value_mask
            best = None
            best_count = 0
            for pattern, count in counts.items():
                if (pattern & care) == value and count > best_count:
                    best = pattern
                    best_count = count
            v = best if best is not None else value  # zero fill fallback
        counts[v] = counts.get(v, 0) + 1
        out.append(v)
    return out


def build_huffman_codes(
    frequencies: Dict[int, int],
) -> Dict[int, Tuple[int, int]]:
    """Canonical Huffman codes ``symbol -> (code, width)``.

    A single-symbol alphabet gets the 1-bit code ``0`` (a zero-width
    code would make the flag-prefixed stream undecodable in theory and
    unreadable in practice).
    """
    if not frequencies:
        return {}
    if len(frequencies) == 1:
        symbol = next(iter(frequencies))
        return {symbol: (0, 1)}
    # Huffman depth per symbol via a pairing heap; ties broken on symbol
    # order for determinism.
    heap: List[Tuple[int, int, List[int]]] = []
    for order, (symbol, freq) in enumerate(sorted(frequencies.items())):
        heapq.heappush(heap, (freq, order, [symbol]))
    depths: Dict[int, int] = {s: 0 for s in frequencies}
    counter = len(heap)
    while len(heap) > 1:
        f1, _o1, s1 = heapq.heappop(heap)
        f2, _o2, s2 = heapq.heappop(heap)
        for s in s1 + s2:
            depths[s] += 1
        heapq.heappush(heap, (f1 + f2, counter, s1 + s2))
        counter += 1
    # Canonical assignment: sort by (depth, symbol), count codes upward.
    ordered = sorted(depths.items(), key=lambda kv: (kv[1], kv[0]))
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    prev_depth = ordered[0][1]
    for symbol, depth in ordered:
        code <<= depth - prev_depth
        codes[symbol] = (code, depth)
        prev_depth = depth
        code += 1
    return codes


def decode_selective_huffman(
    bits: List[int],
    codes: Dict[int, Tuple[int, int]],
    config: HuffmanConfig,
    original_bits: int,
) -> TernaryVector:
    """Decode a selective-Huffman stream back to the assigned stream."""
    # Invert to a (width, code) -> symbol map for prefix decoding.
    inverse = {(width, code): sym for sym, (code, width) in codes.items()}
    reader = BitReader(bits)
    blocks: List[int] = []
    total_blocks = -(-original_bits // config.block_bits)
    while len(blocks) < total_blocks:
        if reader.read_bit() == 1:
            code = 0
            width = 0
            while True:
                code = (code << 1) | reader.read_bit()
                width += 1
                sym = inverse.get((width, code))
                if sym is not None:
                    blocks.append(sym)
                    break
                if width > 64:
                    raise ValueError("undecodable Huffman prefix")
        else:
            blocks.append(reader.read(config.block_bits))
    return _blocks_to_stream(blocks, config.block_bits, original_bits)


def _blocks_to_stream(
    blocks: List[int], width: int, original_bits: int
) -> TernaryVector:
    parts = [TernaryVector.from_int(b, width) for b in blocks]
    return TernaryVector.concat_all(parts)[:original_bits]
