"""Comparison compressors: LZ77, Golomb/plain RLE and selective Huffman."""

from .base import BaselineResult, Compressor
from .golomb import GolombCompressor, GolombConfig, decode_golomb, encode_golomb
from .huffman import (
    HuffmanConfig,
    SelectiveHuffmanCompressor,
    build_huffman_codes,
    decode_selective_huffman,
)
from .lz77 import LZ77Compressor, LZ77Config, decode_lz77, encode_tokens
from .lzw_adapter import LZWCompressorAdapter
from .rle import AlternatingRLECompressor, RLEConfig, decode_rle, encode_rle

__all__ = [
    "AlternatingRLECompressor",
    "BaselineResult",
    "Compressor",
    "GolombCompressor",
    "GolombConfig",
    "HuffmanConfig",
    "LZ77Compressor",
    "LZ77Config",
    "LZWCompressorAdapter",
    "RLEConfig",
    "SelectiveHuffmanCompressor",
    "build_huffman_codes",
    "decode_golomb",
    "decode_lz77",
    "decode_rle",
    "decode_selective_huffman",
    "encode_golomb",
    "encode_rle",
    "encode_tokens",
]
