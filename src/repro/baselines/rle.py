"""Plain fixed-width run-length baseline.

A simple run-length coder kept alongside the Golomb scheme for the
ablation benches: the don't-cares are filled by repeating the last
specified bit (which maximises run lengths), then each run is emitted as
one token of ``1 + L`` bits — the run's value followed by its length in
an ``L``-bit field (biased by -1).  Runs longer than ``2**L`` bits split
into multiple tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..bitstream import BitReader, BitWriter, TernaryVector
from .base import BaselineResult, Compressor, make_result

__all__ = ["RLEConfig", "AlternatingRLECompressor", "encode_rle", "decode_rle"]


@dataclass(frozen=True)
class RLEConfig:
    """``length_bits`` fixes the run-length field width ``L``."""

    length_bits: int = 8

    def __post_init__(self) -> None:
        if self.length_bits < 1:
            raise ValueError("length_bits must be >= 1")

    @property
    def max_run(self) -> int:
        """Longest run one token can carry (``2**L``)."""
        return 1 << self.length_bits


class AlternatingRLECompressor(Compressor):
    """Repeat-last fill + fixed-width ``(value, length)`` run tokens."""

    name = "RLE-fixed"

    def __init__(self, config: RLEConfig = RLEConfig()) -> None:
        self.config = config

    def compress(self, stream: TernaryVector) -> BaselineResult:
        assigned = stream.fill_repeat_last(0)
        runs = _runs(assigned)
        bits = encode_rle(runs, self.config)
        return make_result(
            self,
            stream,
            len(bits),
            assigned,
            extra={"runs": len(runs)},
        )


def _runs(assigned: TernaryVector) -> List[Tuple[int, int]]:
    """``(value, length)`` runs of a fully specified stream."""
    runs: List[Tuple[int, int]] = []
    value_mask = assigned.value_mask
    current = None
    length = 0
    for i in range(len(assigned)):
        bit = (value_mask >> i) & 1
        if bit == current:
            length += 1
        else:
            if current is not None:
                runs.append((current, length))
            current = bit
            length = 1
    if current is not None:
        runs.append((current, length))
    return runs


def encode_rle(runs: List[Tuple[int, int]], config: RLEConfig) -> List[int]:
    """Serialise runs as ``value`` bit + ``L``-bit length tokens."""
    writer = BitWriter()
    max_run = config.max_run
    width = config.length_bits
    for value, length in runs:
        if length < 1:
            raise ValueError("run lengths must be >= 1")
        while length > 0:
            piece = min(length, max_run)
            writer.write_bit(value)
            writer.write(piece - 1, width)
            length -= piece
    return writer.getbits()


def decode_rle(
    bits: List[int], config: RLEConfig, original_bits: int
) -> TernaryVector:
    """Decode an RLE stream back to the assigned scan stream."""
    reader = BitReader(bits)
    out_value = 0
    pos = 0
    width = config.length_bits
    while pos < original_bits:
        value = reader.read_bit()
        length = reader.read(width) + 1
        if pos + length > original_bits:
            raise ValueError("run overflows the declared test length")
        if value:
            out_value |= ((1 << length) - 1) << pos
        pos += length
    return TernaryVector.from_int(out_value, original_bits)
