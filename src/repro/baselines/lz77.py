"""Don't-care-aware LZ77/LZSS baseline.

Reimplementation of the scheme the paper compares against in Table 1
(Wolff & Papachristou, "Multiscan-based Test Compression and Hardware
Decompression Using LZ77", ITC 2002): a bit-level LZSS coder over the
scan stream where an X bit in the lookahead matches *either* value in
the window — matching simultaneously assigns the don't-cares.

Token format (MSB-first):

* literal: ``0`` flag + 1 data bit;
* match:   ``1`` flag + ``offset_bits`` distance (1-based, biased by -1)
  + ``length_bits`` match length (biased by -1).

Matches may self-overlap, exactly like classic LZ77 (the decoder copies
bit-by-bit).  A match is emitted only when it is strictly cheaper than
literals, i.e. its length exceeds the token cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from ..bitstream import BitReader, BitWriter, TernaryVector
from .base import BaselineResult, Compressor, make_result

__all__ = ["LZ77Config", "LZ77Compressor", "decode_lz77"]

Token = Union[Tuple[str, int], Tuple[str, int, int]]


@dataclass(frozen=True)
class LZ77Config:
    """LZSS parameters.

    ``offset_bits`` fixes the window at ``2**offset_bits`` bits;
    ``length_bits`` caps a match at ``2**length_bits`` bits (length is
    stored biased by -1).  ``search_budget`` caps bit comparisons per
    token so encoding stays near-linear; ``min_match`` defaults to one
    more than the match-token cost so matches always win over literals.
    """

    offset_bits: int = 10
    length_bits: int = 6
    search_budget: int = 3000
    min_match: int = 0  # 0 -> auto: token cost + 1

    def __post_init__(self) -> None:
        if self.offset_bits < 1 or self.length_bits < 1:
            raise ValueError("offset_bits and length_bits must be >= 1")
        if self.search_budget < 1:
            raise ValueError("search_budget must be >= 1")
        if self.min_match < 0:
            raise ValueError("min_match must be >= 0")

    @property
    def window(self) -> int:
        """Sliding-window size in bits."""
        return 1 << self.offset_bits

    @property
    def max_length(self) -> int:
        """Longest encodable match in bits."""
        return 1 << self.length_bits

    @property
    def match_token_bits(self) -> int:
        """Cost of one match token (flag + offset + length)."""
        return 1 + self.offset_bits + self.length_bits

    @property
    def effective_min_match(self) -> int:
        """Shortest match worth emitting."""
        return self.min_match if self.min_match else self.match_token_bits + 1


class LZ77Compressor(Compressor):
    """X-aware LZSS over the raw scan bit stream."""

    name = "LZ77"

    def __init__(self, config: LZ77Config = LZ77Config()) -> None:
        self.config = config

    def compress(self, stream: TernaryVector) -> BaselineResult:
        tokens, assigned_bits = self._tokenize(stream)
        bits = encode_tokens(tokens, self.config)
        assigned = _bits_to_vector(assigned_bits)
        return make_result(
            self,
            stream,
            len(bits),
            assigned,
            extra={
                "tokens": len(tokens),
                "matches": sum(1 for t in tokens if t[0] == "match"),
                "token_list": tokens,
                "config": self.config,
            },
        )

    # ------------------------------------------------------------------
    def _tokenize(
        self, stream: TernaryVector
    ) -> Tuple[List[Token], List[int]]:
        cfg = self.config
        n = len(stream)
        care = stream.care_mask
        value = stream.value_mask
        # Local 0/1/None arrays for O(1) per-bit access in the hot loop.
        look = [
            ((value >> i) & 1) if (care >> i) & 1 else None for i in range(n)
        ]
        assigned: List[int] = []
        tokens: List[Token] = []
        min_match = cfg.effective_min_match
        i = 0
        while i < n:
            best_len = 0
            best_dist = 0
            best_bits: List[int] = []
            budget = cfg.search_budget
            hist_len = len(assigned)
            max_dist = min(hist_len, cfg.window)
            limit = min(cfg.max_length, n - i)
            for dist in range(1, max_dist + 1):
                start = hist_len - dist
                mbits: List[int] = []
                k = 0
                while k < limit:
                    pos = start + k
                    b = assigned[pos] if pos < hist_len else mbits[pos - hist_len]
                    want = look[i + k]
                    budget -= 1
                    if want is not None and want != b:
                        break
                    mbits.append(b)
                    k += 1
                if k > best_len:
                    best_len = k
                    best_dist = dist
                    best_bits = mbits
                    if best_len >= limit:
                        break
                if budget <= 0:
                    break
            if best_len >= min_match:
                tokens.append(("match", best_dist, best_len))
                assigned.extend(best_bits)
                i += best_len
            else:
                bit = look[i] if look[i] is not None else 0
                tokens.append(("lit", bit))
                assigned.append(bit)
                i += 1
        return tokens, assigned


def encode_tokens(tokens: List[Token], config: LZ77Config) -> List[int]:
    """Serialise tokens to the bit stream the ATE would download."""
    writer = BitWriter()
    for token in tokens:
        if token[0] == "lit":
            writer.write_bit(0)
            writer.write_bit(token[1])
        else:
            _tag, dist, length = token
            if not 1 <= dist <= config.window:
                raise ValueError(f"distance {dist} out of window")
            if not 1 <= length <= config.max_length:
                raise ValueError(f"length {length} out of range")
            writer.write_bit(1)
            writer.write(dist - 1, config.offset_bits)
            writer.write(length - 1, config.length_bits)
    return writer.getbits()


def decode_lz77(
    bits: List[int],
    config: LZ77Config,
    original_bits: int,
) -> TernaryVector:
    """Decode an LZSS bit stream back to the fully specified scan stream."""
    reader = BitReader(bits)
    out: List[int] = []
    while len(out) < original_bits:
        if reader.read_bit() == 0:
            out.append(reader.read_bit())
        else:
            dist = reader.read(config.offset_bits) + 1
            length = reader.read(config.length_bits) + 1
            if dist > len(out):
                raise ValueError("match distance reaches before stream start")
            start = len(out) - dist
            for k in range(length):
                out.append(out[start + k])
    if len(out) != original_bits:
        raise ValueError("decoded length does not match original_bits")
    return _bits_to_vector(out)


def _bits_to_vector(bits: List[int]) -> TernaryVector:
    value = 0
    for i, b in enumerate(bits):
        if b:
            value |= 1 << i
    return TernaryVector.from_int(value, len(bits))
