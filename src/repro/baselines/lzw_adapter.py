"""Adapter exposing the paper's LZW scheme through the baseline interface.

Table 1 ranks LZW against LZ77 and RLE on identical inputs; wrapping the
core pipeline in :class:`~repro.baselines.base.Compressor` lets the
experiment harness treat all schemes uniformly.
"""

from __future__ import annotations

from typing import Optional

from ..bitstream import TernaryVector
from ..core import LZWConfig, compress
from .base import BaselineResult, Compressor, make_result

__all__ = ["LZWCompressorAdapter"]


class LZWCompressorAdapter(Compressor):
    """The don't-care-aware LZW scheme behind the common interface."""

    name = "LZW"

    def __init__(self, config: Optional[LZWConfig] = None) -> None:
        self.config = config or LZWConfig()

    def compress(self, stream: TernaryVector) -> BaselineResult:
        result = compress(stream, self.config)
        return make_result(
            self,
            stream,
            result.compressed_bits,
            result.assigned_stream,
            extra={
                "num_codes": result.compressed.num_codes,
                "entries_allocated": result.stats.entries_allocated,
                "longest_entry_bits": result.longest_entry_bits,
                "config": self.config,
            },
        )
