"""Golomb run-length baseline (Chandra & Chakrabarty, TCAD 2001).

The "RLE" column of the paper's Table 1 cites the Golomb-coded
run-length scheme: the don't-cares are filled with 0 (making the scan
stream a sparse sequence of 1s separated by long 0-runs), and the length
of the 0-run preceding each 1 is Golomb-coded with a power-of-two group
size ``m = 2**k``: the quotient ``run // m`` in unary (that many 1s, a 0
terminator), the remainder in ``k`` plain bits.

The run after the final 1 carries no information — the decompressor
pads with 0s to the known test length — so it costs nothing, matching
the accounting used in the literature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..bitstream import BitReader, BitWriter, TernaryVector
from .base import BaselineResult, Compressor, make_result

__all__ = ["GolombConfig", "GolombCompressor", "decode_golomb", "golomb_size"]

#: Group sizes tried when ``m`` is left unset (the usual design sweep).
_CANDIDATE_M = (2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class GolombConfig:
    """Golomb parameters; ``m = None`` selects the best group size."""

    m: Optional[int] = None

    def __post_init__(self) -> None:
        if self.m is not None and (self.m < 2 or self.m & (self.m - 1)):
            raise ValueError("m must be a power of two >= 2")


class GolombCompressor(Compressor):
    """Zero-fill + Golomb-coded 0-run lengths."""

    name = "RLE"

    def __init__(self, config: GolombConfig = GolombConfig()) -> None:
        self.config = config

    def compress(self, stream: TernaryVector) -> BaselineResult:
        assigned = stream.fill(0)
        runs = _zero_runs(assigned)
        if self.config.m is not None:
            m = self.config.m
            size = golomb_size(runs, m)
        else:
            m, size = _best_m(runs)
        return make_result(
            self,
            stream,
            size,
            assigned,
            extra={"m": m, "ones": len(runs)},
        )


def _zero_runs(assigned: TernaryVector) -> List[int]:
    """Lengths of the 0-runs preceding each 1 bit."""
    runs = []
    run = 0
    value = assigned.value_mask
    for i in range(len(assigned)):
        if (value >> i) & 1:
            runs.append(run)
            run = 0
        else:
            run += 1
    return runs


def _best_m(runs: List[int]) -> Tuple[int, int]:
    best = None
    for m in _CANDIDATE_M:
        size = golomb_size(runs, m)
        if best is None or size < best[1]:
            best = (m, size)
    assert best is not None
    return best


def golomb_size(runs: List[int], m: int) -> int:
    """Compressed size in bits of the given runs under group size ``m``."""
    k = m.bit_length() - 1
    return sum(run // m + 1 + k for run in runs)


def encode_golomb(runs: List[int], m: int) -> List[int]:
    """Serialise run lengths to a Golomb bit stream."""
    k = m.bit_length() - 1
    writer = BitWriter()
    for run in runs:
        writer.write_unary(run // m, stop_bit=0)
        writer.write(run % m, k)
    return writer.getbits()


def decode_golomb(bits: List[int], m: int, original_bits: int) -> TernaryVector:
    """Decode a Golomb stream; pads trailing 0s to ``original_bits``."""
    k = m.bit_length() - 1
    reader = BitReader(bits)
    out_value = 0
    pos = 0
    while not reader.exhausted:
        run = reader.read_unary(stop_bit=0) * m + reader.read(k)
        pos += run
        if pos >= original_bits:
            raise ValueError("decoded 1 bit beyond the declared test length")
        out_value |= 1 << pos
        pos += 1
    return TernaryVector.from_int(out_value, original_bits)
