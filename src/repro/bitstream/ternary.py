"""Ternary (0/1/X) bit vectors.

Scan test cubes are sequences over ``{0, 1, X}`` where ``X`` marks a
don't-care position that the compressor is free to assign.  This module
provides :class:`TernaryVector`, an immutable vector over that alphabet,
used as the common currency between the ATPG substrate, the workload
generators and every compressor in the library.

Representation
--------------
A vector of length ``n`` stores two unsigned integers:

* ``care``  — bit ``i`` is 1 iff position ``i`` is specified (0 or 1),
* ``value`` — bit ``i`` holds the specified value; it is normalised to 0
  wherever ``care`` is 0.

Position ``i`` of the vector maps to integer bit ``i`` (LSB-first): the
*first* bit of the stream is the least significant bit of both masks.
:meth:`TernaryVector.to_int` and :meth:`TernaryVector.from_int` follow
the same convention, so round-trips never reorder bits.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Sequence, Union

__all__ = ["X", "TernaryVector"]

#: Sentinel used for a don't-care position when iterating / indexing.
X = None

_CHAR_TO_BIT = {"0": 0, "1": 1, "x": X, "X": X, "-": X}
_BIT_TO_CHAR = {0: "0", 1: "1", X: "X"}


class TernaryVector:
    """An immutable vector over ``{0, 1, X}``.

    Instances behave like sequences: ``len``, indexing (returning ``0``,
    ``1`` or :data:`X`), slicing (returning a new vector) and
    concatenation with ``+`` are all supported.
    """

    __slots__ = ("_value", "_care", "_length")

    def __init__(self, bits: Union[str, Iterable[Optional[int]], None] = None):
        value = 0
        care = 0
        length = 0
        if bits is not None:
            if isinstance(bits, str):
                bits = (_parse_char(ch) for ch in bits)
            for bit in bits:
                if bit is not X:
                    if bit not in (0, 1):
                        raise ValueError(f"ternary bit must be 0, 1 or X, got {bit!r}")
                    care |= 1 << length
                    if bit:
                        value |= 1 << length
                length += 1
        self._value = value
        self._care = care
        self._length = length

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_masks(cls, value: int, care: int, length: int) -> "TernaryVector":
        """Build a vector directly from its two masks.

        ``value`` bits outside ``care`` are normalised away; bits of
        either mask beyond ``length`` are truncated.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        mask = (1 << length) - 1
        tv = cls.__new__(cls)
        tv._care = care & mask
        tv._value = value & tv._care
        tv._length = length
        return tv

    @classmethod
    def from_int(cls, value: int, length: int) -> "TernaryVector":
        """A fully specified vector holding ``length`` bits of ``value``."""
        if value < 0:
            raise ValueError("value must be non-negative")
        if length < value.bit_length():
            raise ValueError(f"value {value} does not fit in {length} bits")
        mask = (1 << length) - 1 if length else 0
        return cls.from_masks(value, mask, length)

    @classmethod
    def zeros(cls, length: int) -> "TernaryVector":
        """A fully specified all-zero vector."""
        return cls.from_int(0, length)

    @classmethod
    def xs(cls, length: int) -> "TernaryVector":
        """A vector of ``length`` don't-care bits."""
        return cls.from_masks(0, 0, length)

    @classmethod
    def random(
        cls,
        length: int,
        x_density: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> "TernaryVector":
        """A random vector where each bit is X with probability ``x_density``."""
        if not 0.0 <= x_density <= 1.0:
            raise ValueError("x_density must be within [0, 1]")
        rng = rng or random
        value = 0
        care = 0
        for i in range(length):
            if rng.random() >= x_density:
                care |= 1 << i
                if rng.random() < 0.5:
                    value |= 1 << i
        return cls.from_masks(value, care, length)

    @classmethod
    def concat_all(cls, parts: Sequence["TernaryVector"]) -> "TernaryVector":
        """Concatenate many vectors efficiently (left part comes first)."""
        value = 0
        care = 0
        length = 0
        for part in parts:
            value |= part._value << length
            care |= part._care << length
            length += part._length
        return cls.from_masks(value, care, length)

    # ------------------------------------------------------------------
    # Mask access
    # ------------------------------------------------------------------
    @property
    def value_mask(self) -> int:
        """Integer of specified-one bits (LSB = first position)."""
        return self._value

    @property
    def care_mask(self) -> int:
        """Integer with a 1 at every specified position."""
        return self._care

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Optional[int]]:
        value, care = self._value, self._care
        for i in range(self._length):
            bit = 1 << i
            if care & bit:
                yield 1 if value & bit else 0
            else:
                yield X

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            if step == 1:
                width = max(0, stop - start)
                return TernaryVector.from_masks(
                    self._value >> start, self._care >> start, width
                )
            return TernaryVector(self[i] for i in range(start, stop, step))
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("ternary vector index out of range")
        bit = 1 << index
        if self._care & bit:
            return 1 if self._value & bit else 0
        return X

    def __add__(self, other: "TernaryVector") -> "TernaryVector":
        if not isinstance(other, TernaryVector):
            return NotImplemented
        return TernaryVector.from_masks(
            self._value | (other._value << self._length),
            self._care | (other._care << self._length),
            self._length + other._length,
        )

    # ------------------------------------------------------------------
    # Equality / hashing / display
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, TernaryVector):
            return NotImplemented
        return (
            self._length == other._length
            and self._care == other._care
            and self._value == other._value
        )

    def __hash__(self) -> int:
        return hash((self._value, self._care, self._length))

    def __str__(self) -> str:
        return "".join(_BIT_TO_CHAR[b] for b in self)

    def __repr__(self) -> str:
        shown = str(self) if self._length <= 64 else str(self[:61]) + "..."
        return f"TernaryVector('{shown}')"

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def care_count(self) -> int:
        """Number of specified (0/1) positions."""
        return bin(self._care).count("1")

    @property
    def x_count(self) -> int:
        """Number of don't-care positions."""
        return self._length - self.care_count

    @property
    def x_density(self) -> float:
        """Fraction of positions that are don't-care (0.0 for empty)."""
        return self.x_count / self._length if self._length else 0.0

    @property
    def is_fully_specified(self) -> bool:
        """True when no position is X."""
        return self.care_count == self._length

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def compatible(self, other: "TernaryVector") -> bool:
        """True when the two vectors agree on every mutually specified bit.

        Compatible vectors can be merged (intersection of cubes is
        non-empty); a compressor output is valid iff it is compatible
        with — and at least as specified as — the original cube stream.
        """
        if self._length != other._length:
            return False
        both = self._care & other._care
        return (self._value & both) == (other._value & both)

    def covers(self, other: "TernaryVector") -> bool:
        """True when ``self`` specifies every care bit of ``other`` identically.

        Used to check that a decompressed (fully specified) stream is a
        legal expansion of the original cube stream.
        """
        if self._length != other._length:
            return False
        if (self._care & other._care) != other._care:
            return False
        return (self._value & other._care) == other._value

    def merge(self, other: "TernaryVector") -> "TernaryVector":
        """Intersection of two compatible cubes (union of care bits)."""
        if not self.compatible(other):
            raise ValueError("cannot merge incompatible ternary vectors")
        return TernaryVector.from_masks(
            self._value | other._value,
            self._care | other._care,
            self._length,
        )

    # ------------------------------------------------------------------
    # Assignment / conversion
    # ------------------------------------------------------------------
    def fill(self, bit: int = 0) -> "TernaryVector":
        """Resolve every X to the constant ``bit`` (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError("fill bit must be 0 or 1")
        mask = (1 << self._length) - 1 if self._length else 0
        value = self._value
        if bit:
            value |= mask & ~self._care
        return TernaryVector.from_masks(value, mask, self._length)

    def fill_repeat_last(self, initial: int = 0) -> "TernaryVector":
        """Resolve each X to the most recent specified bit (run-extending)."""
        out_value = 0
        last = initial
        for i in range(self._length):
            bit = 1 << i
            if self._care & bit:
                last = 1 if self._value & bit else 0
            if last:
                out_value |= bit
        mask = (1 << self._length) - 1 if self._length else 0
        return TernaryVector.from_masks(out_value, mask, self._length)

    def fill_random(self, rng: Optional[random.Random] = None) -> "TernaryVector":
        """Resolve each X to an independent fair coin flip."""
        rng = rng or random
        value = self._value
        for i in range(self._length):
            bit = 1 << i
            if not self._care & bit and rng.random() < 0.5:
                value |= bit
        mask = (1 << self._length) - 1 if self._length else 0
        return TernaryVector.from_masks(value, mask, self._length)

    def to_int(self) -> int:
        """Integer value of a fully specified vector (first bit = LSB)."""
        if not self.is_fully_specified:
            raise ValueError("vector contains X bits; fill() it first")
        return self._value

    def chunks(self, width: int) -> List["TernaryVector"]:
        """Split into consecutive ``width``-bit pieces (last may be short)."""
        if width <= 0:
            raise ValueError("chunk width must be positive")
        return [self[i : i + width] for i in range(0, self._length, width)]


def _parse_char(ch: str) -> Optional[int]:
    try:
        return _CHAR_TO_BIT[ch]
    except KeyError:
        raise ValueError(f"invalid ternary character {ch!r}") from None
