"""Bit-level substrate: ternary vectors, chunking and variable-width I/O."""

from .bitio import BitReader, BitWriter
from .packing import from_characters, pad_length, to_characters
from .ternary import TernaryVector, X

__all__ = [
    "BitReader",
    "BitWriter",
    "TernaryVector",
    "X",
    "from_characters",
    "pad_length",
    "to_characters",
]
