"""Variable-width bit-level I/O.

Every compressor in the library emits codes of odd widths (10-bit LZW
codes, Golomb codewords, LZ77 triples...).  :class:`BitWriter` packs
them MSB-first into a byte stream; :class:`BitReader` unpacks the same
stream.  MSB-first packing matches how an ATE would shift a code into
the decompressor's input shift register, most significant bit leading.
"""

from __future__ import annotations

from typing import Iterable, List

from ..reliability.errors import StreamError

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulates variable-width unsigned fields, MSB-first."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value`` (most significant first)."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0:
            raise ValueError("value must be non-negative")
        if value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_bit(self, bit: int) -> None:
        """Append one bit."""
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        self._bits.append(bit)

    def write_unary(self, count: int, stop_bit: int = 0) -> None:
        """Append ``count`` copies of ``1 - stop_bit`` followed by ``stop_bit``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        run_bit = 1 - stop_bit
        self._bits.extend([run_bit] * count)
        self._bits.append(stop_bit)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._bits)

    def getbits(self) -> List[int]:
        """The written bits as a list (a copy)."""
        return list(self._bits)

    def to_bytes(self) -> bytes:
        """Pack into bytes, zero-padding the final partial byte."""
        out = bytearray()
        acc = 0
        n = 0
        for bit in self._bits:
            acc = (acc << 1) | bit
            n += 1
            if n == 8:
                out.append(acc)
                acc = 0
                n = 0
        if n:
            out.append(acc << (8 - n))
        return bytes(out)


class BitReader:
    """Reads variable-width unsigned fields written by :class:`BitWriter`."""

    def __init__(self, bits: Iterable[int]) -> None:
        self._bits = list(bits)
        self._pos = 0
        for bit in self._bits:
            if bit not in (0, 1):
                raise ValueError("bit stream may only contain 0 and 1")

    @classmethod
    def from_bytes(cls, data: bytes, bit_length: int) -> "BitReader":
        """Unpack ``bit_length`` MSB-first bits from ``data``."""
        if bit_length > len(data) * 8:
            raise ValueError("bit_length exceeds available data")
        bits = []
        for i in range(bit_length):
            byte = data[i // 8]
            bits.append((byte >> (7 - (i % 8))) & 1)
        return cls(bits)

    def read(self, width: int) -> int:
        """Consume ``width`` bits and return them as an unsigned value."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if self._pos + width > len(self._bits):
            raise StreamError(
                "bit stream exhausted",
                bit_offset=self._pos,
                requested_bits=width,
                available_bits=len(self._bits) - self._pos,
            )
        value = 0
        for _ in range(width):
            value = (value << 1) | self._bits[self._pos]
            self._pos += 1
        return value

    def read_bit(self) -> int:
        """Consume and return a single bit."""
        return self.read(1)

    def read_unary(self, stop_bit: int = 0) -> int:
        """Consume a unary run terminated by ``stop_bit``; return run length.

        Raises :class:`~repro.reliability.errors.StreamError` when the
        stream ends before the terminator (an unterminated run).
        """
        start = self._pos
        count = 0
        try:
            while self.read_bit() != stop_bit:
                count += 1
        except StreamError:
            raise StreamError(
                "unterminated unary run",
                bit_offset=start,
                run_length=count,
                available_bits=len(self._bits) - start,
            ) from None
        return count

    @property
    def remaining(self) -> int:
        """Bits left to read."""
        return len(self._bits) - self._pos

    @property
    def exhausted(self) -> bool:
        """True when every bit has been consumed."""
        return self._pos >= len(self._bits)
