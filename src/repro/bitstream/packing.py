"""Chunking a ternary scan stream into LZW characters.

The LZW engine consumes the scan-in stream ``C_C`` bits at a time.  The
final chunk is padded with X bits — the decompressor output is truncated
back to the original length, so the pad assignment is immaterial and the
encoder may exploit it like any other don't-care.
"""

from __future__ import annotations

from typing import List, Sequence

from .ternary import TernaryVector

__all__ = ["to_characters", "from_characters", "pad_length"]


def pad_length(stream_bits: int, char_bits: int) -> int:
    """Number of X pad bits appended so the stream is a whole number of chars."""
    if char_bits <= 0:
        raise ValueError("char_bits must be positive")
    remainder = stream_bits % char_bits
    return 0 if remainder == 0 else char_bits - remainder


def to_characters(stream: TernaryVector, char_bits: int) -> List[TernaryVector]:
    """Split ``stream`` into ``char_bits``-wide ternary characters.

    The last character is padded with X bits when the stream length is
    not a multiple of ``char_bits``.
    """
    pad = pad_length(len(stream), char_bits)
    if pad:
        stream = stream + TernaryVector.xs(pad)
    return stream.chunks(char_bits)


def from_characters(chars: Sequence[TernaryVector]) -> TernaryVector:
    """Concatenate characters back into a single stream (pad included)."""
    return TernaryVector.concat_all(list(chars))
