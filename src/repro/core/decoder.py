"""Software reference LZW decoder.

This mirrors the hardware decompressor of the paper's Figure 5 exactly
but at the algorithmic level: given the code stream and the shared
:class:`~repro.core.config.LZWConfig`, it rebuilds the dictionary —
honouring the same capacity (``N``) and entry-width (``C_MDATA``) bounds
the encoder obeyed — and reproduces the fully specified scan stream.
The special "code references the entry being created" case (the paper's
Figure 4f, classic LZW's KwKwK case) is handled explicitly.

The decode loop is exposed incrementally as :func:`iter_decode` so the
salvage decoder (:mod:`repro.reliability.salvage`) can recover the
longest decodable prefix of a corrupted stream; :func:`decode_codes`
is the strict all-or-nothing wrapper.  Failures raise
:class:`~repro.reliability.errors.DecodeError` carrying the code index,
the bit offset of the code in the packed payload and the dictionary
state at the failure point.

The cycle-accurate model lives in :mod:`repro.hardware.decompressor`;
both must agree bit-for-bit, which the test suite checks.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..bitstream import TernaryVector
from ..observability import NULL_RECORDER, Recorder
from ..observability import schema as ev
from ..reliability.errors import DecodeError
from .config import LZWConfig
from .encoder import CompressedStream

__all__ = ["DecodeError", "LZWDecodeError", "decode", "decode_codes", "iter_decode"]

#: Backwards-compatible name for the typed decode failure.
LZWDecodeError = DecodeError


def decode(
    compressed: CompressedStream, recorder: Optional[Recorder] = None
) -> TernaryVector:
    """Decode a :class:`CompressedStream` back to a fully specified stream.

    The result is truncated to ``compressed.original_bits`` (the encoder
    pads the final character with don't-cares).  An empty code stream
    with ``original_bits == 0`` decodes to the empty vector.
    """
    chars = decode_codes(compressed.codes, compressed.config, recorder)
    return _chars_to_stream(chars, compressed.config, compressed.original_bits)


def decode_codes(
    codes: Sequence[int],
    config: LZWConfig,
    recorder: Optional[Recorder] = None,
) -> List[int]:
    """Decode a code sequence to its character sequence.

    Pure-function core shared by :func:`decode` and the tests that
    cross-check the hardware model.
    """
    out: List[int] = []
    for _index, chars in iter_decode(codes, config, recorder):
        out.extend(chars)
    return out


def iter_decode(
    codes: Sequence[int],
    config: LZWConfig,
    recorder: Optional[Recorder] = None,
) -> Iterator[Tuple[int, Tuple[int, ...]]]:
    """Decode incrementally, yielding ``(code_index, characters)`` pairs.

    Each yielded tuple is the expansion of ``codes[code_index]``; the
    dictionary is updated between yields exactly as the hardware would.
    Raising happens *before* the offending code contributes any output,
    so a consumer that stops at the first :class:`DecodeError` holds
    precisely the longest decodable prefix.
    """
    if not codes:
        return

    rec = recorder if recorder is not None else NULL_RECORDER
    recording = rec.enabled
    n_base = config.base_codes
    max_chars = config.max_entry_chars
    capacity = config.dict_size
    code_bits = config.code_bits
    # Allocated entries only; base code ``c`` decodes to ``(c,)`` implicitly.
    strings: List[Tuple[int, ...]] = []
    chars_decoded = 0

    def lookup(code: int) -> Tuple[int, ...]:
        if code < n_base:
            return (code,)
        return strings[code - n_base]

    def next_code() -> int:
        return n_base + len(strings)

    first = codes[0]
    if not 0 <= first < n_base:
        raise DecodeError(
            f"first code {first} must be a base code (< {n_base})",
            code_index=0,
            code=first,
            bit_offset=0,
            dict_next_code=n_base,
            chars_decoded=0,
        )
    prev = (first,)
    if recording:
        rec.incr(ev.DECODE_CODES)
        rec.incr(ev.DECODE_CHARS)
    yield 0, prev
    chars_decoded = 1

    for index, code in enumerate(codes[1:], start=1):
        # Will the encoder have allocated string(prev)+head after emitting
        # prev?  Mirrors LZWDictionary.add's capacity and width bounds.
        will_add = next_code() < capacity and len(prev) + 1 <= max_chars
        if config.reset_on_full and will_add and next_code() == capacity - 1:
            # Adaptive variant: the filling allocation flushes instead
            # (same deterministic trigger as the encoder).
            strings.clear()
            will_add = False
            if recording:
                rec.incr(ev.DECODE_RESETS)
        if 0 <= code < next_code():
            current = lookup(code)
        elif code == next_code() and will_add:
            # KwKwK: the code refers to the entry about to be created —
            # its string is prev + first character of prev (Figure 4f).
            current = prev + (prev[0],)
        else:
            raise DecodeError(
                f"code {code} not yet in dictionary (next free {next_code()})",
                code_index=index,
                code=code,
                bit_offset=index * code_bits,
                dict_next_code=next_code(),
                chars_decoded=chars_decoded,
            )
        if will_add:
            strings.append(prev + (current[0],))
        if recording:
            rec.incr(ev.DECODE_CODES)
            rec.incr(ev.DECODE_CHARS, len(current))
            if will_add:
                rec.incr(ev.DECODE_DICT_ENTRIES)
        yield index, current
        chars_decoded += len(current)
        prev = current


def _chars_to_stream(
    chars: Sequence[int],
    config: LZWConfig,
    original_bits: Optional[int],
) -> TernaryVector:
    parts = [TernaryVector.from_int(c, config.char_bits) for c in chars]
    stream = TernaryVector.concat_all(parts)
    if original_bits is not None:
        if original_bits > len(stream):
            raise DecodeError(
                f"decoded {len(stream)} bits but {original_bits} expected",
                decoded_bits=len(stream),
                expected_bits=original_bits,
            )
        stream = stream[:original_bits]
    return stream
