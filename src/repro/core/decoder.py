"""Software reference LZW decoder.

This mirrors the hardware decompressor of the paper's Figure 5 exactly
but at the algorithmic level: given the code stream and the shared
:class:`~repro.core.config.LZWConfig`, it rebuilds the dictionary —
honouring the same capacity (``N``) and entry-width (``C_MDATA``) bounds
the encoder obeyed — and reproduces the fully specified scan stream.
The special "code references the entry being created" case (the paper's
Figure 4f, classic LZW's KwKwK case) is handled explicitly.

The decode loop is exposed incrementally as :func:`iter_decode` so the
salvage decoder (:mod:`repro.reliability.salvage`) can recover the
longest decodable prefix of a corrupted stream; :func:`decode_codes`
is the strict all-or-nothing wrapper.  Failures raise
:class:`~repro.reliability.errors.DecodeError` carrying the code index,
the bit offset of the code in the packed payload and the dictionary
state at the failure point.

The cycle-accurate model lives in :mod:`repro.hardware.decompressor`;
both must agree bit-for-bit, which the test suite checks.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..bitstream import TernaryVector
from ..observability import NULL_RECORDER, Recorder
from ..observability import schema as ev
from ..reliability.errors import DecodeError
from .config import LZWConfig
from .dictionary import DictionarySnapshot, LZWDictionary
from .encoder import CompressedStream

__all__ = [
    "DecodeError",
    "LZWDecodeError",
    "decode",
    "decode_codes",
    "derive_final_snapshot",
    "iter_decode",
]

#: Backwards-compatible name for the typed decode failure.
LZWDecodeError = DecodeError


def decode(
    compressed: CompressedStream,
    recorder: Optional[Recorder] = None,
    seed: Optional[DictionarySnapshot] = None,
    link: Optional[int] = None,
) -> TernaryVector:
    """Decode a :class:`CompressedStream` back to a fully specified stream.

    The result is truncated to ``compressed.original_bits`` (the encoder
    pads the final character with don't-cares).  An empty code stream
    with ``original_bits == 0`` decodes to the empty vector.

    ``seed``/``link`` decode a *warm-seeded* segment: the stream was
    produced by an encoder whose dictionary started from ``seed`` (and,
    for pipelined-wave shards, whose previous phrase ended at code
    ``link``) — see :func:`iter_decode`.
    """
    chars = decode_codes(
        compressed.codes, compressed.config, recorder, seed=seed, link=link
    )
    return _chars_to_stream(chars, compressed.config, compressed.original_bits)


def decode_codes(
    codes: Sequence[int],
    config: LZWConfig,
    recorder: Optional[Recorder] = None,
    seed: Optional[DictionarySnapshot] = None,
    link: Optional[int] = None,
) -> List[int]:
    """Decode a code sequence to its character sequence.

    Pure-function core shared by :func:`decode` and the tests that
    cross-check the hardware model.
    """
    out: List[int] = []
    for _index, chars in iter_decode(codes, config, recorder, seed=seed, link=link):
        out.extend(chars)
    return out


def iter_decode(
    codes: Sequence[int],
    config: LZWConfig,
    recorder: Optional[Recorder] = None,
    seed: Optional[DictionarySnapshot] = None,
    link: Optional[int] = None,
) -> Iterator[Tuple[int, Tuple[int, ...]]]:
    """Decode incrementally, yielding ``(code_index, characters)`` pairs.

    Each yielded tuple is the expansion of ``codes[code_index]``; the
    dictionary is updated between yields exactly as the hardware would.
    Raising happens *before* the offending code contributes any output,
    so a consumer that stops at the first :class:`DecodeError` holds
    precisely the longest decodable prefix.

    ``seed`` pre-fills the dictionary from a
    :class:`~repro.core.dictionary.DictionarySnapshot` (the stream's
    first code may then be any live code, not just a base code).
    ``link`` replays the cross-shard phrase boundary of a pipelined
    wave: the encoder's previous phrase ended at code ``link`` in the
    *previous* segment, so this decoder performs the boundary
    allocation ``string(link) + first_char(codes[0])`` before anything
    is emitted — exactly what an uninterrupted serial decode would
    have done at that position.
    """
    if not codes:
        return

    rec = recorder if recorder is not None else NULL_RECORDER
    recording = rec.enabled
    n_base = config.base_codes
    max_chars = config.max_entry_chars
    capacity = config.dict_size
    code_bits = config.code_bits
    # Allocated entries only; base code ``c`` decodes to ``(c,)`` implicitly.
    # ``children`` mirrors the encoder trie's child edges as
    # ``(parent_code, char)`` pairs: ``LZWDictionary.add`` is a no-op on
    # an existing child, and at a pipelined-wave link boundary the pair
    # ``(link, head)`` can already exist (the shard cut forced a phrase
    # break mid-match), so the decoder must skip exactly the
    # allocations the encoder skipped or the dictionaries diverge.
    strings: List[Tuple[int, ...]] = []
    children = set()
    if seed is not None:
        seed.require_config(config)
        strings = seed.strings()
        children.update(seed.entries)
    chars_decoded = 0

    def lookup(code: int) -> Tuple[int, ...]:
        if code < n_base:
            return (code,)
        return strings[code - n_base]

    def next_code() -> int:
        return n_base + len(strings)

    if link is not None:
        # Pipelined-wave continuation: the previous segment's last
        # phrase is the boundary predecessor.  No output is produced
        # for it here (its characters belong to the previous segment);
        # the main loop below performs the boundary allocation.
        if not 0 <= link < next_code():
            raise DecodeError(
                f"seed link {link} is not a live code in the seeded "
                f"dictionary (next free {next_code()})",
                code_index=0,
                code=link,
                bit_offset=0,
                dict_next_code=next_code(),
                chars_decoded=0,
            )
        prev = lookup(link)
        prev_code = link
        start = 0
    else:
        first = codes[0]
        if seed is None:
            # Cold start: the dictionary holds only base codes.
            if not 0 <= first < n_base:
                raise DecodeError(
                    f"first code {first} must be a base code (< {n_base})",
                    code_index=0,
                    code=first,
                    bit_offset=0,
                    dict_next_code=n_base,
                    chars_decoded=0,
                )
        elif not 0 <= first < next_code():
            raise DecodeError(
                f"first code {first} not in seeded dictionary "
                f"(next free {next_code()})",
                code_index=0,
                code=first,
                bit_offset=0,
                dict_next_code=next_code(),
                chars_decoded=0,
            )
        prev = lookup(first)
        prev_code = first
        if recording:
            rec.incr(ev.DECODE_CODES)
            rec.incr(ev.DECODE_CHARS, len(prev))
        yield 0, prev
        chars_decoded = len(prev)
        start = 1

    for index, code in enumerate(codes[start:], start=start):
        # Will the encoder have allocated string(prev)+head after emitting
        # prev?  Mirrors LZWDictionary.add's capacity and width bounds.
        will_add = next_code() < capacity and len(prev) + 1 <= max_chars
        if config.reset_on_full and will_add and next_code() == capacity - 1:
            # Adaptive variant: the filling allocation flushes instead
            # (same deterministic trigger as the encoder).
            strings.clear()
            children.clear()
            will_add = False
            if recording:
                rec.incr(ev.DECODE_RESETS)
        if 0 <= code < next_code():
            current = lookup(code)
        elif (
            code == next_code()
            and will_add
            and (prev_code, prev[0]) not in children
        ):
            # KwKwK: the code refers to the entry about to be created —
            # its string is prev + first character of prev (Figure 4f).
            current = prev + (prev[0],)
        else:
            raise DecodeError(
                f"code {code} not yet in dictionary (next free {next_code()})",
                code_index=index,
                code=code,
                bit_offset=index * code_bits,
                dict_next_code=next_code(),
                chars_decoded=chars_decoded,
            )
        if will_add and (prev_code, current[0]) not in children:
            children.add((prev_code, current[0]))
            strings.append(prev + (current[0],))
            if recording:
                rec.incr(ev.DECODE_DICT_ENTRIES)
        if recording:
            rec.incr(ev.DECODE_CODES)
            rec.incr(ev.DECODE_CHARS, len(current))
        yield index, current
        chars_decoded += len(current)
        prev = current
        prev_code = code


def derive_final_snapshot(
    codes: Sequence[int],
    config: LZWConfig,
    seed: Optional[DictionarySnapshot] = None,
    link: Optional[int] = None,
) -> DictionarySnapshot:
    """Dictionary state after encoding the stream behind ``codes``.

    Replays the code sequence through a real :class:`LZWDictionary`,
    mirroring the decoder's ``will_add``/reset logic, and returns the
    snapshot an encoder would have held **after emitting the last code
    but before the next cross-boundary allocation** — the exact seed a
    pipelined-wave successor shard needs (paired with
    ``link=codes[-1]``).  This is how chain seeds are *derived* rather
    than stored: the decoder, the verifier and the supervisor's
    lost-seed retry path all recompute them from bytes they already
    have.

    Raises :class:`~repro.reliability.errors.DecodeError` when the
    codes are not decodable under the (seeded) dictionary — a tampered
    stream can never silently produce a wrong seed.
    """
    dictionary = LZWDictionary(config)
    if seed is not None:
        dictionary.restore(seed)
    capacity = config.dict_size
    prev = link
    if prev is not None and not 0 <= prev < dictionary.next_code:
        raise DecodeError(
            f"seed link {prev} is not a live code in the seeded "
            f"dictionary (next free {dictionary.next_code})",
            code=prev,
            dict_next_code=dictionary.next_code,
        )
    for index, code in enumerate(codes):
        if prev is None:
            # First phrase of a cold/preamble segment: no boundary
            # allocation precedes it.
            if not 0 <= code < dictionary.next_code:
                raise DecodeError(
                    f"first code {code} not in dictionary "
                    f"(next free {dictionary.next_code})",
                    code_index=index,
                    code=code,
                    dict_next_code=dictionary.next_code,
                )
            prev = code
            continue
        # Mirror the encoder's boundary between prev's phrase and this
        # one: maybe reset, else allocate string(prev) + head where
        # head is this phrase's first character.
        will_add = not dictionary.is_full and dictionary.can_extend(prev)
        if config.reset_on_full and will_add and dictionary.next_code == capacity - 1:
            dictionary.reset()
            will_add = False
        if 0 <= code < dictionary.next_code:
            head = dictionary.string(code)[0]
        elif (
            code == dictionary.next_code
            and will_add
            and dictionary.lookup_child(prev, dictionary.string(prev)[0]) is None
        ):
            # KwKwK: the code names the entry the boundary is creating.
            head = dictionary.string(prev)[0]
        else:
            raise DecodeError(
                f"code {code} not yet in dictionary "
                f"(next free {dictionary.next_code})",
                code_index=index,
                code=code,
                dict_next_code=dictionary.next_code,
            )
        if will_add:
            # ``add`` is a no-op (None) when the child already exists —
            # which legitimately happens at a link boundary whose shard
            # cut truncated a phrase mid-match; the encoder skipped the
            # same allocation, so skipping keeps the mirror exact.
            dictionary.add(prev, head)
        prev = code
    return dictionary.snapshot()


def _chars_to_stream(
    chars: Sequence[int],
    config: LZWConfig,
    original_bits: Optional[int],
) -> TernaryVector:
    parts = [TernaryVector.from_int(c, config.char_bits) for c in chars]
    stream = TernaryVector.concat_all(parts)
    if original_bits is not None:
        if original_bits > len(stream):
            raise DecodeError(
                f"decoded {len(stream)} bits but {original_bits} expected",
                decoded_bits=len(stream),
                expected_bits=original_bits,
            )
        stream = stream[:original_bits]
    return stream
