"""Software reference LZW decoder.

This mirrors the hardware decompressor of the paper's Figure 5 exactly
but at the algorithmic level: given the code stream and the shared
:class:`~repro.core.config.LZWConfig`, it rebuilds the dictionary —
honouring the same capacity (``N``) and entry-width (``C_MDATA``) bounds
the encoder obeyed — and reproduces the fully specified scan stream.
The special "code references the entry being created" case (the paper's
Figure 4f, classic LZW's KwKwK case) is handled explicitly.

The cycle-accurate model lives in :mod:`repro.hardware.decompressor`;
both must agree bit-for-bit, which the test suite checks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..bitstream import TernaryVector
from .config import LZWConfig
from .encoder import CompressedStream

__all__ = ["LZWDecodeError", "decode", "decode_codes"]


class LZWDecodeError(ValueError):
    """Raised when a code stream is not decodable under its configuration."""


def decode(compressed: CompressedStream) -> TernaryVector:
    """Decode a :class:`CompressedStream` back to a fully specified stream.

    The result is truncated to ``compressed.original_bits`` (the encoder
    pads the final character with don't-cares).
    """
    chars = decode_codes(compressed.codes, compressed.config)
    return _chars_to_stream(chars, compressed.config, compressed.original_bits)


def decode_codes(codes: Sequence[int], config: LZWConfig) -> List[int]:
    """Decode a code sequence to its character sequence.

    Pure-function core shared by :func:`decode` and the tests that
    cross-check the hardware model.
    """
    if not codes:
        return []

    n_base = config.base_codes
    max_chars = config.max_entry_chars
    capacity = config.dict_size
    # Allocated entries only; base code ``c`` decodes to ``(c,)`` implicitly.
    strings: List[Tuple[int, ...]] = []

    def lookup(code: int) -> Tuple[int, ...]:
        if code < n_base:
            return (code,)
        return strings[code - n_base]

    def next_code() -> int:
        return n_base + len(strings)

    out: List[int] = []
    first = codes[0]
    if first >= n_base:
        raise LZWDecodeError(
            f"first code {first} must be a base code (< {n_base})"
        )
    prev = (first,)
    out.extend(prev)

    for code in codes[1:]:
        # Will the encoder have allocated string(prev)+head after emitting
        # prev?  Mirrors LZWDictionary.add's capacity and width bounds.
        will_add = next_code() < capacity and len(prev) + 1 <= max_chars
        if config.reset_on_full and will_add and next_code() == capacity - 1:
            # Adaptive variant: the filling allocation flushes instead
            # (same deterministic trigger as the encoder).
            strings.clear()
            will_add = False
        if code < next_code():
            current = lookup(code)
        elif code == next_code() and will_add:
            # KwKwK: the code refers to the entry about to be created —
            # its string is prev + first character of prev (Figure 4f).
            current = prev + (prev[0],)
        else:
            raise LZWDecodeError(
                f"code {code} not yet in dictionary (next free {next_code()})"
            )
        if will_add:
            strings.append(prev + (current[0],))
        out.extend(current)
        prev = current
    return out


def _chars_to_stream(
    chars: Sequence[int],
    config: LZWConfig,
    original_bits: Optional[int],
) -> TernaryVector:
    parts = [TernaryVector.from_int(c, config.char_bits) for c in chars]
    stream = TernaryVector.concat_all(parts)
    if original_bits is not None:
        if original_bits > len(stream):
            raise LZWDecodeError(
                f"decoded {len(stream)} bits but {original_bits} expected"
            )
        stream = stream[:original_bits]
    return stream
