"""Bounded-entry LZW dictionary (trie form).

The dictionary is the data structure shared — conceptually — by the
software compressor and the hardware decompressor.  Codes
``0 .. 2**C_C - 1`` are the implicit *base codes* (each representing its
own character); allocated codes start at ``2**C_C`` ("one greater than
the largest uncompressed representation", Section 3 of the paper).

Two hardware constraints shape the structure:

* **capacity** — at most ``N`` codes exist; once full, no further
  entries are created and the dictionary becomes static;
* **entry width** — the uncompressed string of a code must fit the
  embedded-memory word, i.e. at most ``C_MDATA // C_C`` characters.

For don't-care-aware matching the trie answers *compatible-child*
queries: given a node and a ternary character, which children agree with
every specified bit of that character?
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..bitstream import TernaryVector
from .config import LZWConfig

__all__ = ["LZWDictionary"]


class LZWDictionary:
    """Trie over characters with code-indexed node arrays."""

    def __init__(self, config: LZWConfig) -> None:
        self.config = config
        n_base = config.base_codes
        self._max_chars = config.max_entry_chars
        # Node arrays, indexed by code.
        self._parent: List[int] = [-1] * n_base
        self._char: List[int] = list(range(n_base))
        self._nchars: List[int] = [1] * n_base
        self._weight: List[int] = [1] * n_base
        self._children: List[Dict[int, int]] = [dict() for _ in range(n_base)]
        self._strings: List[Tuple[int, ...]] = [(c,) for c in range(n_base)]
        # Base codes that have at least one descendant; keeps root-level
        # candidate scans proportional to distinct phrase heads, not 2**C_C.
        self._active_bases: set = set()

    # ------------------------------------------------------------------
    # Size / capacity
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._parent)

    @property
    def next_code(self) -> int:
        """Code the next allocation would receive."""
        return len(self._parent)

    @property
    def is_full(self) -> bool:
        """True once all ``N`` codes are allocated."""
        return len(self._parent) >= self.config.dict_size

    @property
    def allocated(self) -> int:
        """Number of non-base entries created so far."""
        return len(self._parent) - self.config.base_codes

    def can_extend(self, code: int) -> bool:
        """True when ``string(code) + one char`` still fits the memory word."""
        return self._nchars[code] + 1 <= self._max_chars

    def reset(self) -> None:
        """Flush every allocated entry, back to the base-code state.

        Used by the adaptive (``reset_on_full``) variant; counters and
        statistics reset with the entries.
        """
        n_base = self.config.base_codes
        del self._parent[n_base:]
        del self._char[n_base:]
        del self._nchars[n_base:]
        del self._strings[n_base:]
        self._weight = [1] * n_base
        self._children = [dict() for _ in range(n_base)]
        self._active_bases.clear()

    # ------------------------------------------------------------------
    # Node accessors
    # ------------------------------------------------------------------
    def string(self, code: int) -> Tuple[int, ...]:
        """Uncompressed character string of ``code`` (tuple of char values)."""
        return self._strings[code]

    def nchars(self, code: int) -> int:
        """Length of ``string(code)`` in characters."""
        return self._nchars[code]

    def string_bits(self, code: int) -> int:
        """Length of ``string(code)`` in bits."""
        return self._nchars[code] * self.config.char_bits

    def weight(self, code: int) -> int:
        """Number of codes in the subtree rooted at ``code`` (incl. itself)."""
        return self._weight[code]

    def children(self, code: int) -> Dict[int, int]:
        """Mapping from concrete character to child code (live view)."""
        return self._children[code]

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def lookup_child(self, code: int, char: int) -> Optional[int]:
        """Exact child lookup for a fully specified character."""
        return self._children[code].get(char)

    def compatible_children(
        self, code: int, tchar: TernaryVector
    ) -> List[Tuple[int, int]]:
        """Children of ``code`` compatible with ternary char ``tchar``.

        Returns ``(concrete_char, child_code)`` pairs, unordered.  A child
        keyed by concrete character ``k`` is compatible iff ``k`` agrees
        with every specified bit of ``tchar``.
        """
        care = tchar.care_mask
        value = tchar.value_mask
        kids = self._children[code]
        if care == (1 << len(tchar)) - 1:
            child = kids.get(value)
            return [(value, child)] if child is not None else []
        return [(k, c) for k, c in kids.items() if (k & care) == value]

    def compatible_bases(self, tchar: TernaryVector) -> List[int]:
        """Base codes compatible with ``tchar`` that are worth considering.

        All ``2**x_count`` concrete fills of ``tchar`` are compatible base
        codes, but fills with no descendants are interchangeable for
        matching purposes, so the scan returns every compatible *active*
        base (one with children) plus the canonical zero-fill as a
        fallback candidate.
        """
        care = tchar.care_mask
        value = tchar.value_mask
        out = [b for b in self._active_bases if (b & care) == value]
        zero_fill = value  # X bits resolved to 0
        if zero_fill not in out:
            out.append(zero_fill)
        return out

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def add(self, code: int, char: int) -> Optional[int]:
        """Allocate ``string(code) + char`` if capacity and width allow.

        Returns the new code, or ``None`` when the dictionary is full,
        the entry would exceed the memory word, or the child already
        exists (no duplicate is created).
        """
        if self.is_full or not self.can_extend(code):
            return None
        if char in self._children[code]:
            return None
        new_code = len(self._parent)
        self._parent.append(code)
        self._char.append(char)
        self._nchars.append(self._nchars[code] + 1)
        self._weight.append(1)
        self._children.append(dict())
        self._strings.append(self._strings[code] + (char,))
        self._children[code][char] = new_code
        # Propagate subtree weights up to (and including) the base code.
        node = code
        while node != -1:
            self._weight[node] += 1
            node = self._parent[node]
        base = self._strings[new_code][0]
        self._active_bases.add(base)
        return new_code

    # ------------------------------------------------------------------
    # Introspection for experiments
    # ------------------------------------------------------------------
    def iter_entries(self) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        """Yield ``(code, string)`` for every allocated (non-base) entry."""
        for code in range(self.config.base_codes, len(self._parent)):
            yield code, self._strings[code]

    def longest_entry_chars(self) -> int:
        """Longest allocated entry, in characters (0 when none allocated)."""
        n_base = self.config.base_codes
        if len(self._parent) == n_base:
            return 0
        return max(self._nchars[n_base:])

    def longest_entry_bits(self) -> int:
        """Longest allocated entry, in bits (Table 6's "longest string")."""
        return self.longest_entry_chars() * self.config.char_bits
