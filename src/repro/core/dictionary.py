"""Bounded-entry LZW dictionary (trie form).

The dictionary is the data structure shared — conceptually — by the
software compressor and the hardware decompressor.  Codes
``0 .. 2**C_C - 1`` are the implicit *base codes* (each representing its
own character); allocated codes start at ``2**C_C`` ("one greater than
the largest uncompressed representation", Section 3 of the paper).

Two hardware constraints shape the structure:

* **capacity** — at most ``N`` codes exist; once full, no further
  entries are created and the dictionary becomes static;
* **entry width** — the uncompressed string of a code must fit the
  embedded-memory word, i.e. at most ``C_MDATA // C_C`` characters.

For don't-care-aware matching the trie answers *compatible-child*
queries: given a node and a ternary character, which children agree with
every specified bit of that character?
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..bitstream import TernaryVector
from ..reliability.errors import SnapshotError
from .config import LZWConfig

__all__ = ["DictionarySnapshot", "LZWDictionary", "SNAPSHOT_MAGIC", "SNAPSHOT_VERSION"]

#: Serialized snapshot framing (see :meth:`DictionarySnapshot.to_bytes`).
SNAPSHOT_MAGIC = b"LZWS"
SNAPSHOT_VERSION = 1

#: ``>4sB B I I I`` — magic, version, char_bits, dict_size, entry_bits,
#: entry count.  Entries follow as ``>IH`` (parent code, character), then
#: a trailing CRC-32 over everything before it.
_SNAP_HEADER = struct.Struct(">4sBBIII")
_SNAP_ENTRY = struct.Struct(">IH")
_SNAP_CRC = struct.Struct(">I")


@dataclass(frozen=True)
class DictionarySnapshot:
    """Canonical, versioned serialization of LZW dictionary state.

    A trie state is fully determined by the ordered ``(parent, char)``
    allocation history: replaying those pairs through
    :meth:`LZWDictionary.add` reproduces *every* derived structure —
    strings, subtree weights, children insertion order and the
    ``_active_bases`` insertion history — so a restored dictionary
    continues **byte-identically** under both encoder engines (children
    iteration order and active-base scan order are part of the output
    contract).

    The snapshot also names the configuration identity it was taken
    under (``char_bits``/``dict_size``/``entry_bits``); seeding a
    dictionary with a different shape is a typed
    :class:`~repro.reliability.errors.SnapshotError`, never silent
    corruption.
    """

    char_bits: int
    dict_size: int
    entry_bits: int
    #: ``(parent, char)`` per allocated code, in allocation order.
    entries: Tuple[Tuple[int, int], ...]

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def base_codes(self) -> int:
        return 1 << self.char_bits

    def require_config(self, config: LZWConfig) -> None:
        """Raise :class:`SnapshotError` unless ``config`` matches."""
        for field in ("char_bits", "dict_size", "entry_bits"):
            want = getattr(config, field)
            have = getattr(self, field)
            if want != have:
                raise SnapshotError(
                    f"snapshot was taken under {field}={have}, "
                    f"stream decodes under {field}={want}",
                    field=field,
                    expected=want,
                    actual=have,
                )

    def to_bytes(self) -> bytes:
        """Serialize to the canonical ``LZWS`` framing (CRC-terminated)."""
        out = bytearray(
            _SNAP_HEADER.pack(
                SNAPSHOT_MAGIC,
                SNAPSHOT_VERSION,
                self.char_bits,
                self.dict_size,
                self.entry_bits,
                len(self.entries),
            )
        )
        pack = _SNAP_ENTRY.pack
        for parent, char in self.entries:
            out += pack(parent, char)
        out += _SNAP_CRC.pack(zlib.crc32(bytes(out)) & 0xFFFFFFFF)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DictionarySnapshot":
        """Parse and structurally validate a serialized snapshot.

        Every failure is a typed :class:`SnapshotError`; a snapshot
        that parses is still *replayed* by :meth:`LZWDictionary.
        restore`, which catches the semantic corruptions (duplicate
        children, width/capacity violations) a re-signed tamper can
        produce.
        """
        size = _SNAP_HEADER.size + _SNAP_CRC.size
        if len(data) < size:
            raise SnapshotError(
                f"snapshot truncated: {len(data)} bytes < minimum {size}",
                field="length",
                actual=len(data),
            )
        magic, version, char_bits, dict_size, entry_bits, count = _SNAP_HEADER.unpack(
            data[: _SNAP_HEADER.size]
        )
        if magic != SNAPSHOT_MAGIC:
            raise SnapshotError(
                "bad snapshot magic", field="magic", actual=magic
            )
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"unsupported snapshot version {version}",
                field="version",
                actual=version,
            )
        expected_len = _SNAP_HEADER.size + count * _SNAP_ENTRY.size + _SNAP_CRC.size
        if len(data) != expected_len:
            raise SnapshotError(
                f"snapshot length {len(data)} != {expected_len} "
                f"implied by entry count {count}",
                field="length",
                expected=expected_len,
                actual=len(data),
            )
        (crc,) = _SNAP_CRC.unpack(data[-_SNAP_CRC.size:])
        actual_crc = zlib.crc32(data[: -_SNAP_CRC.size]) & 0xFFFFFFFF
        if crc != actual_crc:
            raise SnapshotError(
                "snapshot CRC mismatch",
                field="crc",
                expected=crc,
                actual=actual_crc,
            )
        n_base = 1 << char_bits
        if not 0 <= count <= max(0, dict_size - n_base):
            raise SnapshotError(
                f"snapshot entry count {count} exceeds capacity "
                f"(N={dict_size}, base codes {n_base})",
                field="count",
                actual=count,
            )
        entries = []
        offset = _SNAP_HEADER.size
        unpack = _SNAP_ENTRY.unpack_from
        for i in range(count):
            parent, char = unpack(data, offset)
            offset += _SNAP_ENTRY.size
            if parent >= n_base + i:
                raise SnapshotError(
                    f"snapshot entry {i} parent {parent} is not an "
                    f"earlier code (< {n_base + i})",
                    field=f"entries[{i}].parent",
                    actual=parent,
                )
            if char >= n_base:
                raise SnapshotError(
                    f"snapshot entry {i} character {char} out of range "
                    f"(< {n_base})",
                    field=f"entries[{i}].char",
                    actual=char,
                )
            entries.append((parent, char))
        return cls(char_bits, dict_size, entry_bits, tuple(entries))

    @property
    def digest(self) -> str:
        """SHA-256 of the canonical bytes — the snapshot's *seed id*."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    def strings(self) -> List[Tuple[int, ...]]:
        """Allocated-entry strings, in code order (decoder seeding).

        Entry ``i`` is the full character string of code
        ``base_codes + i`` — exactly the list :func:`repro.core.decoder.
        iter_decode` would have accumulated after decoding the stream
        the snapshot was derived from.
        """
        n_base = self.base_codes
        out: List[Tuple[int, ...]] = []
        for parent, char in self.entries:
            prefix = (parent,) if parent < n_base else out[parent - n_base]
            out.append(prefix + (char,))
        return out


class LZWDictionary:
    """Trie over characters with code-indexed node arrays."""

    def __init__(self, config: LZWConfig) -> None:
        self.config = config
        n_base = config.base_codes
        self._max_chars = config.max_entry_chars
        # Node arrays, indexed by code.
        self._parent: List[int] = [-1] * n_base
        self._char: List[int] = list(range(n_base))
        self._nchars: List[int] = [1] * n_base
        self._weight: List[int] = [1] * n_base
        self._children: List[Dict[int, int]] = [dict() for _ in range(n_base)]
        self._strings: List[Tuple[int, ...]] = [(c,) for c in range(n_base)]
        # Base codes that have at least one descendant; keeps root-level
        # candidate scans proportional to distinct phrase heads, not 2**C_C.
        self._active_bases: set = set()

    # ------------------------------------------------------------------
    # Size / capacity
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._parent)

    @property
    def next_code(self) -> int:
        """Code the next allocation would receive."""
        return len(self._parent)

    @property
    def is_full(self) -> bool:
        """True once all ``N`` codes are allocated."""
        return len(self._parent) >= self.config.dict_size

    @property
    def allocated(self) -> int:
        """Number of non-base entries created so far."""
        return len(self._parent) - self.config.base_codes

    def can_extend(self, code: int) -> bool:
        """True when ``string(code) + one char`` still fits the memory word."""
        return self._nchars[code] + 1 <= self._max_chars

    def reset(self) -> None:
        """Flush every allocated entry, back to the base-code state.

        Used by the adaptive (``reset_on_full``) variant; counters and
        statistics reset with the entries.
        """
        n_base = self.config.base_codes
        del self._parent[n_base:]
        del self._char[n_base:]
        del self._nchars[n_base:]
        del self._strings[n_base:]
        self._weight = [1] * n_base
        self._children = [dict() for _ in range(n_base)]
        self._active_bases.clear()

    # ------------------------------------------------------------------
    # Node accessors
    # ------------------------------------------------------------------
    def string(self, code: int) -> Tuple[int, ...]:
        """Uncompressed character string of ``code`` (tuple of char values)."""
        return self._strings[code]

    def nchars(self, code: int) -> int:
        """Length of ``string(code)`` in characters."""
        return self._nchars[code]

    def string_bits(self, code: int) -> int:
        """Length of ``string(code)`` in bits."""
        return self._nchars[code] * self.config.char_bits

    def weight(self, code: int) -> int:
        """Number of codes in the subtree rooted at ``code`` (incl. itself)."""
        return self._weight[code]

    def children(self, code: int) -> Dict[int, int]:
        """Mapping from concrete character to child code (live view)."""
        return self._children[code]

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def lookup_child(self, code: int, char: int) -> Optional[int]:
        """Exact child lookup for a fully specified character."""
        return self._children[code].get(char)

    def compatible_children(
        self, code: int, tchar: TernaryVector
    ) -> List[Tuple[int, int]]:
        """Children of ``code`` compatible with ternary char ``tchar``.

        Returns ``(concrete_char, child_code)`` pairs, unordered.  A child
        keyed by concrete character ``k`` is compatible iff ``k`` agrees
        with every specified bit of ``tchar``.
        """
        care = tchar.care_mask
        value = tchar.value_mask
        kids = self._children[code]
        if care == (1 << len(tchar)) - 1:
            child = kids.get(value)
            return [(value, child)] if child is not None else []
        return [(k, c) for k, c in kids.items() if (k & care) == value]

    def compatible_bases(self, tchar: TernaryVector) -> List[int]:
        """Base codes compatible with ``tchar`` that are worth considering.

        All ``2**x_count`` concrete fills of ``tchar`` are compatible base
        codes, but fills with no descendants are interchangeable for
        matching purposes, so the scan returns every compatible *active*
        base (one with children) plus the canonical zero-fill as a
        fallback candidate.
        """
        care = tchar.care_mask
        value = tchar.value_mask
        out = [b for b in self._active_bases if (b & care) == value]
        zero_fill = value  # X bits resolved to 0
        if zero_fill not in out:
            out.append(zero_fill)
        return out

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def add(self, code: int, char: int) -> Optional[int]:
        """Allocate ``string(code) + char`` if capacity and width allow.

        Returns the new code, or ``None`` when the dictionary is full,
        the entry would exceed the memory word, or the child already
        exists (no duplicate is created).
        """
        if self.is_full or not self.can_extend(code):
            return None
        if char in self._children[code]:
            return None
        new_code = len(self._parent)
        self._parent.append(code)
        self._char.append(char)
        self._nchars.append(self._nchars[code] + 1)
        self._weight.append(1)
        self._children.append(dict())
        self._strings.append(self._strings[code] + (char,))
        self._children[code][char] = new_code
        # Propagate subtree weights up to (and including) the base code.
        node = code
        while node != -1:
            self._weight[node] += 1
            node = self._parent[node]
        base = self._strings[new_code][0]
        self._active_bases.add(base)
        return new_code

    # ------------------------------------------------------------------
    # Snapshot / restore (warm-dictionary seeding)
    # ------------------------------------------------------------------
    def snapshot(self) -> DictionarySnapshot:
        """Capture the allocation history as a :class:`DictionarySnapshot`.

        O(allocated); the returned value is immutable and independent
        of this dictionary's further evolution.
        """
        n_base = self.config.base_codes
        entries = tuple(zip(self._parent[n_base:], self._char[n_base:]))
        return DictionarySnapshot(
            self.config.char_bits,
            self.config.dict_size,
            self.config.entry_bits,
            entries,
        )

    def restore(self, snapshot: DictionarySnapshot) -> None:
        """Replay ``snapshot`` into this freshly constructed dictionary.

        Replaying the ``(parent, char)`` history through :meth:`add`
        rebuilds every derived structure — including the children
        insertion order and the ``_active_bases`` insertion history the
        encoders' candidate scans iterate — so a restored dictionary is
        indistinguishable from one that lived through the original
        encode.  Raises :class:`SnapshotError` on a config mismatch or
        when an entry cannot be replayed (duplicate child / width /
        capacity — the semantic corruptions structural validation
        cannot see).
        """
        if self.allocated:
            raise SnapshotError(
                "restore() requires a freshly constructed dictionary",
                actual=self.allocated,
            )
        snapshot.require_config(self.config)
        for i, (parent, char) in enumerate(snapshot.entries):
            if parent >= len(self._parent) or char >= self.config.base_codes:
                raise SnapshotError(
                    f"snapshot entry {i} ({parent}, {char}) is out of range",
                    field=f"entries[{i}]",
                )
            if self.add(parent, char) is None:
                raise SnapshotError(
                    f"snapshot entry {i} ({parent}, {char}) is not "
                    "replayable (duplicate child, entry width or "
                    "capacity violation)",
                    field=f"entries[{i}]",
                )

    # ------------------------------------------------------------------
    # Introspection for experiments
    # ------------------------------------------------------------------
    def iter_entries(self) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        """Yield ``(code, string)`` for every allocated (non-base) entry."""
        for code in range(self.config.base_codes, len(self._parent)):
            yield code, self._strings[code]

    def longest_entry_chars(self) -> int:
        """Longest allocated entry, in characters (0 when none allocated)."""
        n_base = self.config.base_codes
        if len(self._parent) == n_base:
            return 0
        return max(self._nchars[n_base:])

    def longest_entry_bits(self) -> int:
        """Longest allocated entry, in bits (Table 6's "longest string")."""
        return self.longest_entry_chars() * self.config.char_bits
