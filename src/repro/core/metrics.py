"""Compression and download metrics as the paper's tables define them."""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "compression_ratio",
    "compression_percent",
    "x_density_percent",
    "geometric_mean",
]


def compression_ratio(original_bits: int, compressed_bits: int) -> float:
    """``1 - compressed/original``; positive means the output is smaller.

    The paper's tables report this quantity in percent (e.g. 80.69 for
    s13207f).  A negative value means the "compression" expanded the
    data — possible for dense streams with a small dictionary.
    """
    if original_bits < 0 or compressed_bits < 0:
        raise ValueError("bit counts must be non-negative")
    if original_bits == 0:
        return 0.0
    return 1.0 - compressed_bits / original_bits


def compression_percent(original_bits: int, compressed_bits: int) -> float:
    """:func:`compression_ratio` scaled to percent."""
    return 100.0 * compression_ratio(original_bits, compressed_bits)


def x_density_percent(care_bits: int, total_bits: int) -> float:
    """Percentage of don't-care bits (Table 3's "Don't Cares" column)."""
    if total_bits <= 0:
        raise ValueError("total_bits must be positive")
    if not 0 <= care_bits <= total_bits:
        raise ValueError("care_bits out of range")
    return 100.0 * (total_bits - care_bits) / total_bits


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, used to summarise ratio columns across circuits."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
