"""Multi-chain scan compression.

The paper's method is deliberately scan-architecture-independent: the
LZW engine sees one serial stream regardless of how the cells are
organised.  Real SoCs, though, split the cells across several chains
(the "multiscan" setting of the LZ77 comparison paper), which changes
*what stream the compressor sees*.  This module provides the two
standard arrangements and a partitioner:

* ``per_chain`` — each chain's bits form an independent stream with its
  own decompressor/dictionary (parallel engines, smaller N each);
* ``interleaved`` — one stream in shift order: at each scan-shift cycle
  the bit for chain 0, chain 1, ... (a single engine feeding a
  demultiplexer, as a shared decompressor would see it).

Both preserve the coverage invariant, and the ablation bench quantifies
the ratio cost of each arrangement versus the single-chain baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..bitstream import TernaryVector
from ..circuit.scan import ScanChain, TestSet
from .config import LZWConfig
from .metrics import compression_percent, compression_ratio
from .pipeline import CompressionResult, compress

__all__ = [
    "partition_chains",
    "chain_streams",
    "interleave_stream",
    "deinterleave_stream",
    "MultiChainResult",
    "compress_per_chain",
    "compress_interleaved",
]


def partition_chains(
    test_set: TestSet, n_chains: int, name_prefix: str = "chain"
) -> List[ScanChain]:
    """Split a test set's cells into balanced consecutive chains.

    Consecutive partitioning mirrors physical stitching order; chains
    differ in length by at most one cell.
    """
    if n_chains < 1:
        raise ValueError("n_chains must be >= 1")
    if n_chains > test_set.width:
        raise ValueError(
            f"cannot build {n_chains} chains from {test_set.width} cells"
        )
    cells = test_set.input_names
    base = test_set.width // n_chains
    extra = test_set.width % n_chains
    chains = []
    start = 0
    for index in range(n_chains):
        length = base + (1 if index < extra else 0)
        chains.append(
            ScanChain(f"{name_prefix}{index}", cells[start : start + length])
        )
        start += length
    return chains


def chain_streams(
    test_set: TestSet, chains: Sequence[ScanChain]
) -> List[TernaryVector]:
    """Per-chain scan-in streams (each chain's slice of every vector)."""
    offsets = _chain_offsets(test_set, chains)
    streams = []
    for chain, start in zip(chains, offsets):
        parts = [cube[start : start + chain.length] for cube in test_set]
        streams.append(TernaryVector.concat_all(parts))
    return streams


def interleave_stream(
    test_set: TestSet, chains: Sequence[ScanChain]
) -> TernaryVector:
    """One stream in shift order: cycle-by-cycle across all chains.

    At shift cycle ``c`` the tester feeds bit ``c`` of every chain; short
    chains sit idle (their slot is a don't-care) once exhausted.
    """
    offsets = _chain_offsets(test_set, chains)
    max_len = max(chain.length for chain in chains)
    bits: List[Optional[int]] = []
    for cube in test_set:
        for cycle in range(max_len):
            for chain, start in zip(chains, offsets):
                if cycle < chain.length:
                    bits.append(cube[start + cycle])
                else:
                    bits.append(None)  # idle slot: free for the encoder
    return TernaryVector(bits)


def deinterleave_stream(
    stream: TernaryVector,
    chains: Sequence[ScanChain],
    n_vectors: int,
) -> List[TernaryVector]:
    """Invert :func:`interleave_stream` back to per-vector cubes."""
    max_len = max(chain.length for chain in chains)
    slot_count = max_len * len(chains)
    if len(stream) != slot_count * n_vectors:
        raise ValueError("stream length does not match the chain geometry")
    cubes = []
    pos = 0
    for _v in range(n_vectors):
        per_chain: List[List[Optional[int]]] = [[] for _ in chains]
        for cycle in range(max_len):
            for index, chain in enumerate(chains):
                bit = stream[pos]
                pos += 1
                if cycle < chain.length:
                    per_chain[index].append(bit)
        flat: List[Optional[int]] = []
        for bits in per_chain:
            flat.extend(bits)
        cubes.append(TernaryVector(flat))
    return cubes


@dataclass(frozen=True)
class MultiChainResult:
    """Aggregate of a multi-chain compression run."""

    arrangement: str  # "per_chain" | "interleaved"
    chains: Tuple[str, ...]
    results: Tuple[CompressionResult, ...]
    original_bits: int

    @property
    def compressed_bits(self) -> int:
        """Total bits across every engine's stream."""
        return sum(r.compressed_bits for r in self.results)

    @property
    def ratio(self) -> float:
        """Aggregate compression ratio over the true test-data volume.

        Delegates to :func:`repro.core.metrics.compression_ratio`.
        """
        return compression_ratio(self.original_bits, self.compressed_bits)

    @property
    def ratio_percent(self) -> float:
        """Aggregate ratio in percent."""
        return compression_percent(self.original_bits, self.compressed_bits)


def compress_per_chain(
    test_set: TestSet,
    chains: Sequence[ScanChain],
    config: LZWConfig,
) -> MultiChainResult:
    """Independent engine (and dictionary) per chain."""
    streams = chain_streams(test_set, chains)
    results = tuple(compress(stream, config) for stream in streams)
    for stream, result in zip(streams, results):
        if not result.verify(stream):
            raise AssertionError("per-chain compression broke a care bit")
    return MultiChainResult(
        arrangement="per_chain",
        chains=tuple(c.name for c in chains),
        results=results,
        original_bits=test_set.total_bits,
    )


def compress_interleaved(
    test_set: TestSet,
    chains: Sequence[ScanChain],
    config: LZWConfig,
) -> MultiChainResult:
    """One shared engine over the cycle-interleaved stream.

    The idle pad slots of shorter chains count as compressible input
    (the engine must emit *something* each cycle) but not as test-data
    volume, matching how multiscan papers account for it.
    """
    stream = interleave_stream(test_set, chains)
    result = compress(stream, config)
    if not result.verify(stream):
        raise AssertionError("interleaved compression broke a care bit")
    return MultiChainResult(
        arrangement="interleaved",
        chains=tuple(c.name for c in chains),
        results=(result,),
        original_bits=test_set.total_bits,
    )


def _chain_offsets(
    test_set: TestSet, chains: Sequence[ScanChain]
) -> List[int]:
    """Start offset of each chain's cells within the cube bit order."""
    index_of = {name: i for i, name in enumerate(test_set.input_names)}
    offsets = []
    total = 0
    for chain in chains:
        try:
            start = index_of[chain.cells[0]]
        except KeyError:
            raise ValueError(
                f"chain {chain.name} references unknown cell {chain.cells[0]}"
            ) from None
        for k, cell in enumerate(chain.cells):
            if index_of.get(cell) != start + k:
                raise ValueError(
                    f"chain {chain.name} cells must be consecutive in the "
                    f"test set's input order"
                )
        offsets.append(start)
        total += chain.length
    if total != test_set.width:
        raise ValueError(
            f"chains cover {total} cells but the test set has "
            f"{test_set.width}"
        )
    return offsets
