"""The don't-care-aware LZW encoder (the paper's compression tool).

The encoder consumes a ternary scan stream, chunks it into ``C_C``-bit
ternary characters and runs LZW where the dictionary match at each step
is allowed to *choose* the assignment of any X bits (see
:class:`repro.core.dontcare.ChildSelector`).  Emitted output is a
sequence of ``C_E``-bit codes; the X assignments are implied by the
codes themselves, so no side information is transmitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..bitstream import BitReader, BitWriter, TernaryVector, to_characters
from ..observability import NULL_RECORDER, Recorder
from ..observability import schema as ev
from ..reliability.errors import SnapshotError
from .config import LZWConfig
from .dictionary import DictionarySnapshot, LZWDictionary
from .dontcare import ChildSelector
from .fastpath import encode_fast, resolve_engine
from .metrics import compression_percent, compression_ratio

__all__ = ["CompressedStream", "EncodeStats", "LZWEncoder"]


@dataclass(frozen=True)
class CompressedStream:
    """An encoded test set: the code sequence plus what is needed to decode it.

    ``expansion_chars[i]`` records how many characters code ``codes[i]``
    expands to — redundant for decoding but required by the hardware
    download-time model (:mod:`repro.hardware.timing`).
    """

    codes: Tuple[int, ...]
    config: LZWConfig
    original_bits: int
    expansion_chars: Tuple[int, ...] = field(repr=False, default=())

    def __post_init__(self) -> None:
        # Range-validate the whole tuple with C-speed min/max; the
        # Python loop runs only on the failure path to name the bad
        # code.  Construction is hot on reassembly/decode paths, so the
        # valid case must not pay a per-code interpreter loop.
        codes = self.codes
        if codes and not (0 <= min(codes) and max(codes) < self.config.dict_size):
            limit = self.config.dict_size
            for code in codes:
                if not 0 <= code < limit:
                    raise ValueError(f"code {code} out of range for N={limit}")
        if self.expansion_chars and len(self.expansion_chars) != len(self.codes):
            raise ValueError("expansion_chars must align with codes")

    @property
    def num_codes(self) -> int:
        """Number of emitted codes."""
        return len(self.codes)

    @property
    def compressed_bits(self) -> int:
        """Size of the compressed stream in bits (``num_codes * C_E``)."""
        return self.num_codes * self.config.code_bits

    @property
    def ratio(self) -> float:
        """Compression ratio ``1 - compressed/original`` (may be negative).

        Delegates to :func:`repro.core.metrics.compression_ratio` — the
        single definition of the paper's ratio — so stats objects and
        the metrics module can never disagree.
        """
        return compression_ratio(self.original_bits, self.compressed_bits)

    @property
    def ratio_percent(self) -> float:
        """Ratio as the percentage the paper's tables report."""
        return compression_percent(self.original_bits, self.compressed_bits)

    def to_bits(self) -> List[int]:
        """Serialise to the bit sequence the ATE would stream."""
        writer = BitWriter()
        width = self.config.code_bits
        for code in self.codes:
            writer.write(code, width)
        return writer.getbits()

    @classmethod
    def from_bits(
        cls,
        bits: List[int],
        config: LZWConfig,
        original_bits: int,
    ) -> "CompressedStream":
        """Deserialise a bit sequence produced by :meth:`to_bits`."""
        if len(bits) % config.code_bits:
            raise ValueError("bit stream length is not a multiple of C_E")
        reader = BitReader(bits)
        codes = []
        while not reader.exhausted:
            codes.append(reader.read(config.code_bits))
        return cls(tuple(codes), config, original_bits)


@dataclass(frozen=True)
class EncodeStats:
    """Dictionary and phrase statistics gathered during one encoding run."""

    entries_allocated: int
    dictionary_full: bool
    longest_entry_chars: int
    longest_phrase_chars: int
    total_chars: int


class LZWEncoder:
    """Single-use encoder: construct, call :meth:`encode` once.

    The dictionary persists on the instance afterwards so experiments can
    inspect it (entry lengths, occupancy, Table 6's longest string).

    ``seed`` starts the dictionary from a
    :class:`~repro.core.dictionary.DictionarySnapshot` instead of cold
    base codes; ``link`` additionally replays the cross-shard phrase
    boundary of a pipelined wave (the previous shard's last emitted
    code), so encoding a stream suffix from the matching seed is
    byte-identical to the uninterrupted serial encode — the contract
    ``tests/core/test_seeded_differential.py`` locks for both engines.
    """

    def __init__(
        self,
        config: Optional[LZWConfig] = None,
        recorder: Optional[Recorder] = None,
        cancel: Optional[object] = None,
        seed: Optional[DictionarySnapshot] = None,
        link: Optional[int] = None,
    ) -> None:
        self.config = config or LZWConfig()
        self.dictionary = LZWDictionary(self.config)
        if seed is not None:
            self.dictionary.restore(seed)
        if link is not None and not 0 <= link < self.dictionary.next_code:
            raise SnapshotError(
                f"seed link {link} is not a live code in the seeded "
                f"dictionary (next free {self.dictionary.next_code})",
                actual=link,
                expected=self.dictionary.next_code,
            )
        self.seed = seed
        self.link = link
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        # Cooperative cancellation: any object with a ``check()`` that
        # raises (see repro.service.cancel.CancellationToken).  Duck
        # typed so the core never imports the service layer.
        self.cancel = cancel
        self._used = False

    def encode(self, stream: TernaryVector) -> CompressedStream:
        """Compress a ternary scan stream into a :class:`CompressedStream`.

        The engine is picked by ``config.engine``: ``"fast"`` (and
        ``"auto"``, the default) runs the bit-parallel matcher of
        :mod:`repro.core.fastpath`; ``"reference"`` runs the original
        per-candidate trie walk.  Both are byte-identical — the
        differential conformance suite and the golden files lock the
        equivalence — so the knob only trades implementation.
        """
        if self._used:
            raise RuntimeError("LZWEncoder instances are single-use; make a new one")
        self._used = True
        if resolve_engine(self.config.engine) == "fast":
            codes, expansions = encode_fast(self, stream)
            return CompressedStream(
                tuple(codes), self.config, len(stream), tuple(expansions)
            )
        return self._encode_reference(stream)

    def _encode_reference(self, stream: TernaryVector) -> CompressedStream:
        """The original per-candidate trie walk (the conformance oracle)."""
        cfg = self.config
        dictionary = self.dictionary
        # Hoisted once: with the default NullRecorder the whole run pays
        # this single attribute read, and every event site below is one
        # local-bool branch (bench_overhead.py holds it to <= 5%).
        rec = self.recorder
        recording = rec.enabled
        chars = to_characters(stream, cfg.char_bits)
        codes: List[int] = []
        expansions: List[int] = []
        self._longest_phrase = 0
        self._total_chars = len(chars)
        if not chars:
            return CompressedStream((), cfg, 0, ())
        if recording:
            rec.incr(ev.ENCODE_CHARS, len(chars))

        # Deadline checkpoint, hoisted like the recorder: the common
        # no-token path pays one extra local-bool test per character.
        cancel = self.cancel
        cancelling = cancel is not None
        if cancelling:
            cancel.check()

        selector = ChildSelector(dictionary, cfg)
        buffer = selector.choose_base(chars, 0)
        if self.link is not None:
            # Pipelined-wave continuation: perform the cross-shard
            # boundary the serial encoder would have run between the
            # previous shard's last phrase (``link``) and this one —
            # after the head is chosen (the serial ordering), before
            # any character is consumed.
            self._seed_boundary(dictionary, rec, recording, self.link, buffer)
        phrase_start = 0
        i = 1
        while i < len(chars):
            if cancelling and not (i & 1023):  # every CHECK_INTERVAL chars
                cancel.check()
            choice = selector.choose_child(buffer, chars, i)
            if choice is not None:
                _char, child = choice
                buffer = child
                i += 1
                continue
            # Phrase boundary: emit the buffer code, allocate
            # string(buffer) + head(next phrase) if the memory allows,
            # and restart the phrase at a concrete fill of chars[i].
            codes.append(buffer)
            expansions.append(dictionary.nchars(buffer))
            self._longest_phrase = max(self._longest_phrase, i - phrase_start)
            if recording:
                self._record_phrase(rec, chars, phrase_start, i)
            head = selector.choose_base(chars, i)
            if (
                cfg.reset_on_full
                and not dictionary.is_full
                and dictionary.can_extend(buffer)
                and dictionary.next_code == cfg.dict_size - 1
            ):
                # Adaptive variant: the allocation that would freeze the
                # dictionary flushes it instead.  The decoder derives
                # the same trigger from its allocation counter, so no
                # clear code is needed in the stream.
                dictionary.reset()
                if recording:
                    rec.incr(ev.DICT_RESETS)
            else:
                added = dictionary.add(buffer, head)
                if recording:
                    if added is not None:
                        rec.incr(ev.DICT_ALLOCS)
                    elif dictionary.is_full:
                        rec.incr(ev.DICT_FULL_SKIPS)
                    elif not dictionary.can_extend(buffer):
                        rec.incr(ev.DICT_CMDATA_TRUNCATIONS)
            buffer = head
            phrase_start = i
            i += 1
        codes.append(buffer)
        expansions.append(dictionary.nchars(buffer))
        self._longest_phrase = max(self._longest_phrase, len(chars) - phrase_start)
        if recording:
            self._record_phrase(rec, chars, phrase_start, len(chars))
            rec.incr(ev.ENCODE_CODES, len(codes))
            rec.observe(ev.HIST_CODES_PER_WIDTH, cfg.code_bits, len(codes))

        return CompressedStream(tuple(codes), cfg, len(stream), tuple(expansions))

    def _seed_boundary(
        self,
        dictionary: LZWDictionary,
        rec: Recorder,
        recording: bool,
        link: int,
        head: int,
    ) -> None:
        """The maybe-reset-or-allocate step at a pipelined-wave boundary."""
        cfg = self.config
        if (
            cfg.reset_on_full
            and not dictionary.is_full
            and dictionary.can_extend(link)
            and dictionary.next_code == cfg.dict_size - 1
        ):
            dictionary.reset()
            if recording:
                rec.incr(ev.DICT_RESETS)
            return
        added = dictionary.add(link, head)
        if recording:
            if added is not None:
                rec.incr(ev.DICT_ALLOCS)
            elif dictionary.is_full:
                rec.incr(ev.DICT_FULL_SKIPS)
            elif not dictionary.can_extend(link):
                rec.incr(ev.DICT_CMDATA_TRUNCATIONS)

    @staticmethod
    def _record_phrase(
        rec: Recorder, chars: List[TernaryVector], start: int, end: int
    ) -> None:
        """Record one completed phrase ``chars[start:end]`` (recording only)."""
        xbits = sum(chars[j].x_count for j in range(start, end))
        rec.observe(ev.HIST_PHRASE_LEN, end - start)
        rec.observe(ev.HIST_XBITS_PER_PHRASE, xbits)
        rec.incr(ev.ENCODE_XBITS, xbits)

    def stats(self) -> EncodeStats:
        """Statistics of the completed run (call after :meth:`encode`)."""
        if not self._used:
            raise RuntimeError("encode() has not been called yet")
        return EncodeStats(
            entries_allocated=self.dictionary.allocated,
            dictionary_full=self.dictionary.is_full,
            longest_entry_chars=self.dictionary.longest_entry_chars(),
            longest_phrase_chars=self._longest_phrase,
            total_chars=self._total_chars,
        )
