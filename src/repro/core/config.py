"""LZW engine configuration (the paper's "configurator" block).

The paper parameterises the scheme by:

* ``C_C``   — uncompressed character width in bits (``char_bits``),
* ``N``     — dictionary size in codes, *including* the ``2**C_C``
  implicit base codes (``dict_size``); the emitted code width is
  ``C_E = ceil(log2 N)`` (``code_bits``),
* ``C_MDATA`` — embedded-memory word width in data bits, which bounds the
  uncompressed string any single code may represent (``entry_bits``).

The don't-care assignment strategy (Section 5 of the paper: "dynamic
sliding window") is selected by ``policy`` with its window depth
``lookahead`` and a node budget bounding the search.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..reliability.errors import ConfigError

__all__ = ["ConfigError", "ENGINES", "LZWConfig", "POLICIES"]

#: Recognised dynamic-assignment policies (see :mod:`repro.core.dontcare`).
POLICIES = ("first", "popular", "lookahead")

#: Recognised encoder engines (see :mod:`repro.core.fastpath`).
ENGINES = ("auto", "reference", "fast")


@dataclass(frozen=True)
class LZWConfig:
    """Static configuration of the LZW compressor/decompressor pair.

    Attributes
    ----------
    char_bits:
        ``C_C`` — bits consumed from the scan stream per LZW character.
    dict_size:
        ``N`` — total number of codes (base codes plus allocated entries).
    entry_bits:
        ``C_MDATA`` — maximum uncompressed bits a single dictionary code
        may expand to (the embedded-memory word width).
    policy:
        Dynamic don't-care assignment heuristic: ``"first"`` (lowest
        code), ``"popular"`` (heaviest subtree) or ``"lookahead"``
        (bounded sliding-window search, the paper's method).
    lookahead:
        Window depth ``W`` in characters for the ``"lookahead"`` policy.
    lookahead_budget:
        Maximum trie nodes visited per assignment decision; bounds the
        search so encoding stays linear in practice.
    reset_on_full:
        The paper freezes the dictionary once all ``N`` codes exist
        (``False``, the default).  ``True`` selects the adaptive
        variant: at the phrase boundary where the final entry *would*
        be allocated, both sides instead flush back to the base codes —
        no clear code is transmitted because the trigger is a
        deterministic function of the shared allocation counter.
    engine:
        Encoder implementation: ``"fast"`` (bit-parallel word-packed
        matching, :mod:`repro.core.fastpath`), ``"reference"`` (the
        original per-candidate trie walk, kept as the conformance
        oracle) or ``"auto"`` (the default; resolves to ``"fast"``).
        Both engines are byte-identical, so the knob never changes the
        output — only the speed at which it is produced.  Like the
        policy knobs it is not stored in containers.
    """

    char_bits: int = 7
    dict_size: int = 1024
    entry_bits: int = 63
    policy: str = "lookahead"
    lookahead: int = 4
    lookahead_budget: int = 128
    reset_on_full: bool = False
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.char_bits < 1:
            raise ConfigError(
                "char_bits must be >= 1", field="char_bits", value=self.char_bits
            )
        if self.char_bits > 16:
            raise ConfigError(
                "char_bits above 16 is not supported",
                field="char_bits",
                value=self.char_bits,
            )
        if self.dict_size < self.base_codes:
            raise ConfigError(
                f"dict_size ({self.dict_size}) must cover the "
                f"{self.base_codes} base codes of a {self.char_bits}-bit "
                f"character",
                field="dict_size",
                value=self.dict_size,
            )
        if self.entry_bits < self.char_bits:
            raise ConfigError(
                "entry_bits must hold at least one character",
                field="entry_bits",
                value=self.entry_bits,
            )
        if self.policy not in POLICIES:
            raise ConfigError(
                f"unknown policy {self.policy!r}; pick from {POLICIES}",
                field="policy",
                value=self.policy,
            )
        if self.lookahead < 1:
            raise ConfigError(
                "lookahead must be >= 1", field="lookahead", value=self.lookahead
            )
        if self.lookahead_budget < 1:
            raise ConfigError(
                "lookahead_budget must be >= 1",
                field="lookahead_budget",
                value=self.lookahead_budget,
            )
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; pick from {ENGINES}",
                field="engine",
                value=self.engine,
            )

    @property
    def base_codes(self) -> int:
        """Number of implicit single-character codes (``2**char_bits``)."""
        return 1 << self.char_bits

    @property
    def code_bits(self) -> int:
        """``C_E`` — width of each emitted compressed code."""
        return max(1, (self.dict_size - 1).bit_length())

    @property
    def max_entry_chars(self) -> int:
        """Longest dictionary string, in characters, the memory can hold."""
        return self.entry_bits // self.char_bits

    @property
    def free_codes(self) -> int:
        """Codes available for allocated dictionary entries."""
        return self.dict_size - self.base_codes

    def describe(self) -> str:
        """One-line human-readable summary used by the CLI and benches."""
        return (
            f"C_C={self.char_bits} N={self.dict_size} (C_E={self.code_bits}) "
            f"C_MDATA={self.entry_bits} policy={self.policy}"
            + (f" W={self.lookahead}" if self.policy == "lookahead" else "")
            + (f" engine={self.engine}" if self.engine != "auto" else "")
        )
