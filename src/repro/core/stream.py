"""Bounded-memory incremental LZW codec (the streaming state machines).

One-shot :func:`repro.core.compress` materialises the whole input, the
whole character list and the whole code stream.  This module provides
the same algorithm as a pair of incremental state machines that consume
and emit bounded chunks:

* :class:`StreamEncoder` — feed ternary chunks, collect codes as they
  are committed, ``finalize()`` to flush the tail.  Output is
  **byte-identical** to the one-shot encoder for the same input and
  configuration (and therefore to both engines, whose equivalence the
  differential conformance suite locks).
* :class:`StreamDecoder` — push codes one at a time, collect character
  expansions; an exact incremental mirror of
  :func:`repro.core.decoder.iter_decode` built on a real
  :class:`~repro.core.dictionary.LZWDictionary`, so the decoder can
  also answer :meth:`StreamDecoder.snapshot` — the
  :class:`~repro.core.dictionary.DictionarySnapshot` a resumed session
  seeds from.

Byte-identity under chunking
----------------------------
The only part of the encoder whose decision at character ``i`` depends
on characters *after* ``i`` is the ``"lookahead"`` policy: a decision
at index ``i`` inspects at most ``chars[i .. i+W-1]`` (window ``W``,
per-decision node budget reset in ``ChildSelector._lookahead_best``),
**and** returns shallower continuation depths when the buffer ends
early.  The streaming encoder therefore only commits the decision at
index ``i`` once at least ``W`` characters from ``i`` are buffered —
or the input is finalized, at which point the buffer end *is* the true
end of the stream.  With that single rule every decision sees exactly
the window the one-shot encoder saw, so the emitted codes are equal.

Memory bounds
-------------
The encoder retains only the characters of the current (uncommitted)
phrase plus the ``W``-character slack; a phrase never exceeds
``max_entry_chars`` (trie depth is capped by ``C_MDATA``), so peak
retention is ``O(max_entry_chars + W + chunk)`` characters regardless
of input length.  The dictionary is capped at ``N`` codes as always.
The decoder retains only the dictionary and the previous expansion.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..bitstream import TernaryVector, pad_length
from ..observability import NULL_RECORDER, Recorder
from ..observability import schema as ev
from ..reliability.errors import DecodeError
from .config import LZWConfig
from .dictionary import DictionarySnapshot, LZWDictionary
from .dontcare import ChildSelector
from .encoder import EncodeStats, LZWEncoder

__all__ = ["StreamDecoder", "StreamEncoder", "chars_to_vector"]


def chars_to_vector(chars: Tuple[int, ...], char_bits: int) -> TernaryVector:
    """Concatenate decoded character values into a fully specified vector."""
    value = 0
    shift = 0
    for char in chars:
        value |= char << shift
        shift += char_bits
    return TernaryVector.from_masks(value, (1 << shift) - 1 if shift else 0, shift)


class StreamEncoder:
    """Incremental don't-care-aware LZW encoder.

    Usage::

        enc = StreamEncoder(config)
        for chunk in chunks:          # TernaryVector pieces, any sizes
            codes.extend(enc.feed(chunk))
        codes.extend(enc.finalize())

    ``codes`` then equals ``compress(concat(chunks), config)``'s code
    sequence exactly.  ``seed``/``link`` start from a warm dictionary
    (the resume path: a crashed streaming session continues from the
    salvaged journal's derived snapshot and last code, byte-identical
    to the uninterrupted encode — the same contract the pipelined-wave
    shards rely on).

    ``recorder`` and ``cancel`` behave as in :class:`~repro.core.
    encoder.LZWEncoder`: the same ``encode.*``/``dict.*`` counters are
    emitted (identical totals to the one-shot run) and the cancellation
    token is checked every 1024 consumed characters.
    """

    def __init__(
        self,
        config: Optional[LZWConfig] = None,
        recorder: Optional[Recorder] = None,
        cancel: Optional[object] = None,
        seed: Optional[DictionarySnapshot] = None,
        link: Optional[int] = None,
    ) -> None:
        self.config = config or LZWConfig()
        self.dictionary = LZWDictionary(self.config)
        if seed is not None:
            self.dictionary.restore(seed)
        if link is not None and not 0 <= link < self.dictionary.next_code:
            from ..reliability.errors import SnapshotError

            raise SnapshotError(
                f"seed link {link} is not a live code in the seeded "
                f"dictionary (next free {self.dictionary.next_code})",
                actual=link,
                expected=self.dictionary.next_code,
            )
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.cancel = cancel
        self._link = link
        self._selector = ChildSelector(self.dictionary, self.config)
        # How many characters from the decision index must be visible
        # before a decision is safe to commit pre-finalize (see module
        # docstring).  Non-lookahead policies read only chars[i].
        self._slack = (
            self.config.lookahead if self.config.policy == "lookahead" else 1
        )
        self._chars: List[TernaryVector] = []
        self._pending: TernaryVector = TernaryVector.xs(0)
        self._pos = 0
        self._phrase_start = 0
        self._buffer: Optional[int] = None
        self._started = False
        self._finished = False
        self._original_bits = 0
        self._total_chars = 0
        self._abs_index = 0
        self._codes_emitted = 0
        self._longest_phrase = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def original_bits(self) -> int:
        """Total bits fed so far (the stream's ``original_bits``)."""
        return self._original_bits

    @property
    def finished(self) -> bool:
        """True once :meth:`finalize` has run."""
        return self._finished

    @property
    def buffered_chars(self) -> int:
        """Characters currently retained (memory-bound diagnostics)."""
        return len(self._chars)

    def stats(self) -> EncodeStats:
        """Statistics of the completed run (call after :meth:`finalize`)."""
        if not self._finished:
            raise RuntimeError("finalize() has not been called yet")
        return EncodeStats(
            entries_allocated=self.dictionary.allocated,
            dictionary_full=self.dictionary.is_full,
            longest_entry_chars=self.dictionary.longest_entry_chars(),
            longest_phrase_chars=self._longest_phrase,
            total_chars=self._total_chars,
        )

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def feed(self, chunk: TernaryVector) -> List[int]:
        """Consume one input chunk; return the codes committed by it."""
        if self._finished:
            raise RuntimeError("feed() after finalize()")
        if not len(chunk):
            return []
        self._original_bits += len(chunk)
        combined = self._pending + chunk if len(self._pending) else chunk
        char_bits = self.config.char_bits
        full = (len(combined) // char_bits) * char_bits
        if full:
            new_chars = combined[:full].chunks(char_bits)
            self._chars.extend(new_chars)
            self._total_chars += len(new_chars)
            if self.recorder.enabled:
                self.recorder.incr(ev.ENCODE_CHARS, len(new_chars))
            self._pending = combined[full:]
            return self._drain(final=False)
        self._pending = combined
        return []

    def finalize(self) -> List[int]:
        """Flush the tail (padding the final partial character with X).

        Returns the remaining codes; after this the concatenation of
        every ``feed()`` return value plus this one is the one-shot
        code sequence.
        """
        if self._finished:
            raise RuntimeError("finalize() called twice")
        self._finished = True
        rec = self.recorder
        recording = rec.enabled
        if len(self._pending):
            pad = pad_length(len(self._pending), self.config.char_bits)
            self._chars.append(self._pending + TernaryVector.xs(pad))
            self._total_chars += 1
            if recording:
                rec.incr(ev.ENCODE_CHARS, 1)
            self._pending = TernaryVector.xs(0)
        codes = self._drain(final=True)
        if self._started:
            codes.append(self._buffer)
            self._codes_emitted += 1
            tail = len(self._chars) - self._phrase_start
            if tail > self._longest_phrase:
                self._longest_phrase = tail
            if recording:
                LZWEncoder._record_phrase(
                    rec, self._chars, self._phrase_start, len(self._chars)
                )
        if self._total_chars and recording:
            rec.incr(ev.ENCODE_CODES, self._codes_emitted)
            rec.observe(
                ev.HIST_CODES_PER_WIDTH, self.config.code_bits, self._codes_emitted
            )
        self._chars.clear()
        return codes

    # ------------------------------------------------------------------
    # The committed-decision loop (mirrors LZWEncoder._encode_reference)
    # ------------------------------------------------------------------
    def _drain(self, final: bool) -> List[int]:
        dictionary = self.dictionary
        selector = self._selector
        chars = self._chars
        slack = self._slack
        rec = self.recorder
        recording = rec.enabled
        cancel = self.cancel
        cancelling = cancel is not None
        codes: List[int] = []
        navail = len(chars)

        if not self._started:
            if not navail or (navail < slack and not final):
                return codes
            self._buffer = selector.choose_base(chars, 0)
            if self._link is not None:
                # Warm continuation: replay the cross-boundary
                # allocation the serial encoder would have performed
                # between the previous session's last phrase and this
                # one (after the head is chosen, before any character
                # is consumed) — LZWEncoder._seed_boundary's contract.
                self._boundary(dictionary, rec, recording, self._link, self._buffer)
                self._link = None
            self._started = True
            self._pos = 1
            self._phrase_start = 0

        pos = self._pos
        while pos < navail and (final or navail - pos >= slack):
            self._abs_index += 1
            if cancelling and not (self._abs_index & 1023):
                cancel.check()
            choice = selector.choose_child(self._buffer, chars, pos)
            if choice is not None:
                _char, child = choice
                self._buffer = child
                pos += 1
                continue
            codes.append(self._buffer)
            self._codes_emitted += 1
            if pos - self._phrase_start > self._longest_phrase:
                self._longest_phrase = pos - self._phrase_start
            if recording:
                LZWEncoder._record_phrase(rec, chars, self._phrase_start, pos)
            head = selector.choose_base(chars, pos)
            self._boundary(dictionary, rec, recording, self._buffer, head)
            self._buffer = head
            self._phrase_start = pos
            pos += 1
        self._pos = pos

        # Trim the committed prefix: decisions only ever read forward
        # from the current index, and phrase recording reads back only
        # to phrase_start, so everything before it is dead.  Phrase
        # length is capped by max_entry_chars, which bounds retention.
        if self._phrase_start > 0:
            del chars[: self._phrase_start]
            self._pos -= self._phrase_start
            self._phrase_start = 0
        return codes

    def _boundary(
        self,
        dictionary: LZWDictionary,
        rec: Recorder,
        recording: bool,
        tail_code: int,
        head: int,
    ) -> None:
        """The maybe-reset-or-allocate step at a phrase boundary."""
        cfg = self.config
        if (
            cfg.reset_on_full
            and not dictionary.is_full
            and dictionary.can_extend(tail_code)
            and dictionary.next_code == cfg.dict_size - 1
        ):
            dictionary.reset()
            if recording:
                rec.incr(ev.DICT_RESETS)
            return
        added = dictionary.add(tail_code, head)
        if recording:
            if added is not None:
                rec.incr(ev.DICT_ALLOCS)
            elif dictionary.is_full:
                rec.incr(ev.DICT_FULL_SKIPS)
            elif not dictionary.can_extend(tail_code):
                rec.incr(ev.DICT_CMDATA_TRUNCATIONS)


class StreamDecoder:
    """Incremental LZW decoder mirroring :func:`iter_decode` exactly.

    :meth:`push` consumes one code and returns its character expansion;
    the dictionary between pushes evolves precisely as the one-shot
    decoder's would, including the adaptive reset and the KwKwK case.
    Because the state lives in a real :class:`LZWDictionary`,
    :meth:`snapshot` returns at any code boundary the same
    :class:`DictionarySnapshot` :func:`~repro.core.decoder.
    derive_final_snapshot` would derive from the codes pushed so far —
    the per-frame dictionary digests of the v5 streaming container and
    the crash-resume seed both come from it.
    """

    def __init__(
        self,
        config: LZWConfig,
        recorder: Optional[Recorder] = None,
        seed: Optional[DictionarySnapshot] = None,
        link: Optional[int] = None,
    ) -> None:
        self.config = config
        self.dictionary = LZWDictionary(config)
        self._seeded = seed is not None
        if seed is not None:
            self.dictionary.restore(seed)
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._prev: Optional[Tuple[int, ...]] = None
        self._prev_code: Optional[int] = None
        self._index = 0
        self._chars_decoded = 0
        if link is not None:
            if not 0 <= link < self.dictionary.next_code:
                raise DecodeError(
                    f"seed link {link} is not a live code in the seeded "
                    f"dictionary (next free {self.dictionary.next_code})",
                    code_index=0,
                    code=link,
                    bit_offset=0,
                    dict_next_code=self.dictionary.next_code,
                    chars_decoded=0,
                )
            self._prev = self.dictionary.string(link)
            self._prev_code = link

    @property
    def codes_decoded(self) -> int:
        """Number of codes pushed so far."""
        return self._index

    @property
    def chars_decoded(self) -> int:
        """Number of characters produced so far."""
        return self._chars_decoded

    def snapshot(self) -> DictionarySnapshot:
        """Dictionary state at the current code boundary (seed/digest)."""
        return self.dictionary.snapshot()

    def push(self, code: int) -> Tuple[int, ...]:
        """Decode one code; returns its expansion, raises DecodeError."""
        rec = self.recorder
        recording = rec.enabled
        dictionary = self.dictionary
        config = self.config
        n_base = config.base_codes
        capacity = config.dict_size
        index = self._index

        if self._prev is None:
            # First code of a cold or blob-seeded stream.
            limit = dictionary.next_code if self._seeded else n_base
            if not 0 <= code < limit:
                raise DecodeError(
                    (
                        f"first code {code} must be a base code (< {n_base})"
                        if not self._seeded
                        else f"first code {code} not in seeded dictionary "
                        f"(next free {dictionary.next_code})"
                    ),
                    code_index=index,
                    code=code,
                    bit_offset=index * config.code_bits,
                    dict_next_code=dictionary.next_code,
                    chars_decoded=0,
                )
            current = dictionary.string(code)
            self._prev = current
            self._prev_code = code
            self._index = index + 1
            self._chars_decoded += len(current)
            if recording:
                rec.incr(ev.DECODE_CODES)
                rec.incr(ev.DECODE_CHARS, len(current))
            return current

        prev = self._prev
        prev_code = self._prev_code
        # Will the encoder have allocated string(prev)+head after
        # emitting prev?  (Arithmetic, not can_extend(): prev_code may
        # predate an adaptive reset, when its node no longer exists.)
        will_add = (
            dictionary.next_code < capacity and len(prev) + 1 <= config.max_entry_chars
        )
        if config.reset_on_full and will_add and dictionary.next_code == capacity - 1:
            dictionary.reset()
            will_add = False
            if recording:
                rec.incr(ev.DECODE_RESETS)
        if 0 <= code < dictionary.next_code:
            current = dictionary.string(code)
        elif (
            code == dictionary.next_code
            and will_add
            and dictionary.lookup_child(prev_code, prev[0]) is None
        ):
            # KwKwK (Figure 4f): the code names the entry being created.
            current = prev + (prev[0],)
        else:
            raise DecodeError(
                f"code {code} not yet in dictionary "
                f"(next free {dictionary.next_code})",
                code_index=index,
                code=code,
                bit_offset=index * config.code_bits,
                dict_next_code=dictionary.next_code,
                chars_decoded=self._chars_decoded,
            )
        if will_add:
            # add() no-ops (None) on an existing child — the same
            # allocations the encoder skipped are skipped here.
            if dictionary.add(prev_code, current[0]) is not None and recording:
                rec.incr(ev.DECODE_DICT_ENTRIES)
        if recording:
            rec.incr(ev.DECODE_CODES)
            rec.incr(ev.DECODE_CHARS, len(current))
        self._prev = current
        self._prev_code = code
        self._index = index + 1
        self._chars_decoded += len(current)
        return current
