"""High-level compress/verify API — the library's front door.

:func:`compress` runs the don't-care-aware LZW encoder on a ternary scan
stream and returns a :class:`CompressionResult` bundling the code
stream, the implied X assignment and the dictionary statistics every
experiment needs.  :meth:`CompressionResult.verify` re-decodes and
checks the central invariant: the decompressed stream must *cover* the
original cubes (reproduce every specified bit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..bitstream import TernaryVector
from ..observability import NULL_RECORDER, Recorder
from .config import LZWConfig
from .decoder import decode
from .dictionary import DictionarySnapshot
from .encoder import CompressedStream, EncodeStats, LZWEncoder

__all__ = ["CompressionResult", "compress", "compress_batch", "decompress"]


@dataclass(frozen=True)
class CompressionResult:
    """Everything produced by one compression run.

    Attributes
    ----------
    compressed:
        The code stream and its configuration.
    assigned_stream:
        The fully specified stream the decompressor will reproduce —
        i.e. the original cubes with every X resolved by the encoder.
    stats:
        Dictionary/phrase statistics of the run.
    """

    compressed: CompressedStream
    assigned_stream: TernaryVector
    stats: EncodeStats
    #: Warm-dictionary provenance: the snapshot the encoder started
    #: from and the pipelined-wave link code, when seeded (both None
    #: for a cold run).  A seeded code stream only decodes with them.
    seed: Optional[DictionarySnapshot] = None
    link: Optional[int] = None

    @property
    def ratio(self) -> float:
        """Compression ratio ``1 - compressed/original``."""
        return self.compressed.ratio

    @property
    def ratio_percent(self) -> float:
        """Compression ratio in percent (the tables' unit)."""
        return self.compressed.ratio_percent

    @property
    def original_bits(self) -> int:
        """Size of the uncompressed stream in bits."""
        return self.compressed.original_bits

    @property
    def compressed_bits(self) -> int:
        """Size of the compressed stream in bits."""
        return self.compressed.compressed_bits

    @property
    def longest_entry_bits(self) -> int:
        """Longest allocated dictionary string in bits (Table 6 column)."""
        return self.stats.longest_entry_chars * self.compressed.config.char_bits

    @property
    def longest_phrase_bits(self) -> int:
        """Longest encoder phrase in bits — the ``C_MDATA`` that would be
        needed to capture every phrase in a single dictionary entry."""
        return self.stats.longest_phrase_chars * self.compressed.config.char_bits

    def verify(self, original: TernaryVector) -> bool:
        """True iff decoding reproduces every specified bit of ``original``."""
        decoded = decode(self.compressed, seed=self.seed, link=self.link)
        return decoded.covers(original)


def compress(
    stream: TernaryVector,
    config: Optional[LZWConfig] = None,
    recorder: Optional[Recorder] = None,
    cancel: Optional[object] = None,
    seed: Optional[DictionarySnapshot] = None,
    link: Optional[int] = None,
) -> CompressionResult:
    """Compress a ternary scan stream with don't-care-aware LZW.

    Degenerate inputs round-trip: an empty stream yields an empty code
    sequence with ``original_bits == 0``, and an all-X stream decodes to
    whatever concrete fill the encoder chose (which trivially covers
    it).  Both are locked in by ``tests/reliability/test_degenerate``.

    ``recorder`` (see :mod:`repro.observability`) collects encode/decode
    counters plus ``encode``/``assign`` wall-time spans; the default
    null recorder costs one flag check.

    ``cancel`` is a cooperative cancellation token (any object with a
    raising ``check()``; see :class:`repro.service.cancel.
    CancellationToken`): it is checked inside the encoder's symbol loop
    and at each stage boundary, so a deadlined service request stops
    burning CPU within ~:data:`~repro.service.cancel.CHECK_INTERVAL`
    characters of its deadline.
    """
    rec = recorder if recorder is not None else NULL_RECORDER
    encoder = LZWEncoder(config, recorder=rec, cancel=cancel, seed=seed, link=link)
    with rec.span("encode"):
        compressed = encoder.encode(stream)
    if cancel is not None:
        cancel.check()
    with rec.span("assign"):
        assigned = decode(compressed, recorder=rec, seed=seed, link=link)
    if cancel is not None:
        cancel.check()
    return CompressionResult(compressed, assigned, encoder.stats(), seed, link)


def compress_batch(configs, streams, workers=None, **kwargs):
    """Compress many streams across a worker pool (the batch front door).

    Thin forwarder to :func:`repro.parallel.compress_batch` — kept here
    so the one-stream and many-stream entry points live side by side.
    See that function for parameters (``shard_bits``, ``pattern_bits``,
    explicit ``plans``) and the determinism contract: the output bytes
    depend only on the inputs and shard plans, never on ``workers``.
    """
    from ..parallel import compress_batch as _compress_batch

    return _compress_batch(configs, streams, workers=workers, **kwargs)


def decompress(compressed: CompressedStream) -> TernaryVector:
    """Decode a :class:`CompressedStream` (alias of :func:`decoder.decode`)."""
    return decode(compressed)
