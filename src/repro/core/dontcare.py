"""Don't-care assignment strategies.

The paper reports (Section 5) that every *pre-processing* assignment of
the X bits it tried — filling before running LZW — topped out at 40–60%
compression, and that the published results required assigning the X
bits *while* the LZW encoder runs ("dynamic sliding window").  This
module provides both families:

* **static fills** (:func:`static_fill`) — resolve every X up front with
  a simple rule; used as the ablation strawmen;
* **dynamic selection heuristics** — called by the encoder at each step
  to pick, among dictionary children compatible with the next ternary
  character, the concrete assignment to commit to.  The ``"lookahead"``
  heuristic is the paper's sliding window: a bounded search over the
  next ``W`` characters choosing the child with the longest compatible
  continuation.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..bitstream import TernaryVector
from .config import LZWConfig
from .dictionary import LZWDictionary

__all__ = ["STATIC_FILLS", "static_fill", "ChildSelector"]

#: Static pre-assignment rules accepted by :func:`static_fill`.
STATIC_FILLS = ("zero", "one", "repeat", "random")


def static_fill(
    stream: TernaryVector,
    rule: str = "zero",
    seed: Optional[int] = None,
) -> TernaryVector:
    """Resolve every X bit of ``stream`` up front with a fixed rule.

    ``"zero"``/``"one"`` fill with a constant, ``"repeat"`` extends the
    most recent specified bit (minimising transitions, the natural
    pre-fill for run-length coders) and ``"random"`` flips a seeded coin
    per X bit.
    """
    if rule == "zero":
        return stream.fill(0)
    if rule == "one":
        return stream.fill(1)
    if rule == "repeat":
        return stream.fill_repeat_last(0)
    if rule == "random":
        return stream.fill_random(random.Random(seed))
    raise ValueError(f"unknown static fill rule {rule!r}; pick from {STATIC_FILLS}")


class ChildSelector:
    """Dynamic (in-loop) don't-care assignment for the LZW encoder.

    One instance is created per encoding run; it owns the lookahead node
    budget bookkeeping.  The two entry points mirror the two decision
    sites of the encoder:

    * :meth:`choose_child` — the current phrase ``code`` may extend by
      the next ternary character; pick which compatible child to follow
      (committing that child's concrete character as the X assignment),
      or return ``None`` to signal a dictionary miss.
    * :meth:`choose_base` — a new phrase starts at a ternary character;
      pick the concrete single-character base code to restart from.
    """

    def __init__(self, dictionary: LZWDictionary, config: LZWConfig) -> None:
        self._dict = dictionary
        self._config = config
        self._policy = config.policy
        self._window = config.lookahead
        self._budget_limit = config.lookahead_budget
        self._budget = 0

    # ------------------------------------------------------------------
    # Decision sites
    # ------------------------------------------------------------------
    def choose_child(
        self,
        code: int,
        chars: Sequence[TernaryVector],
        index: int,
    ) -> Optional[Tuple[int, int]]:
        """Pick a compatible child of ``code`` for character ``chars[index]``.

        Returns ``(concrete_char, child_code)`` or ``None`` when no child
        is compatible (an LZW phrase boundary).
        """
        candidates = self._dict.compatible_children(code, chars[index])
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        if self._policy == "first":
            return min(candidates, key=lambda kc: kc[1])
        if self._policy == "popular":
            return max(candidates, key=self._popularity_key)
        return self._lookahead_best(candidates, chars, index)

    def choose_base(
        self,
        chars: Sequence[TernaryVector],
        index: int,
    ) -> int:
        """Pick the concrete base code to restart a phrase at ``chars[index]``.

        Any concrete fill of the ternary character is a legal base code;
        the heuristics prefer one whose subtree promises the longest
        continuation through the following characters.
        """
        bases = self._dict.compatible_bases(chars[index])
        if len(bases) == 1:
            return bases[0]
        if self._policy == "first":
            return min(bases)
        if self._policy == "popular":
            return max(bases, key=lambda b: (self._dict.weight(b), -b))
        candidates = [(b, b) for b in bases]
        return self._lookahead_best(candidates, chars, index)[1]

    # ------------------------------------------------------------------
    # Heuristics
    # ------------------------------------------------------------------
    def _popularity_key(self, cand: Tuple[int, int]):
        char, child = cand
        return (self._dict.weight(child), -child)

    def _lookahead_best(
        self,
        candidates: List[Tuple[int, int]],
        chars: Sequence[TernaryVector],
        index: int,
    ) -> Tuple[int, int]:
        """Sliding-window choice: deepest compatible continuation wins.

        Each candidate child consumes ``chars[index]``; its score is how
        many of the following ``W - 1`` characters a descent through the
        trie can still absorb.  The search shares a per-decision node
        budget so worst-case cost stays bounded; ties fall back to
        subtree weight, then the lowest code (deterministic output).
        """
        self._budget = self._budget_limit
        best = None
        best_key = None
        limit = self._window - 1
        for char, child in candidates:
            depth = self._continuation(child, chars, index + 1, limit)
            key = (depth, self._dict.weight(child), -child)
            if best_key is None or key > best_key:
                best_key = key
                best = (char, child)
            if depth >= limit and self._budget <= 0:
                break
        assert best is not None
        return best

    def _continuation(
        self,
        code: int,
        chars: Sequence[TernaryVector],
        index: int,
        limit: int,
    ) -> int:
        """Longest match depth from ``code`` through ``chars[index:]``.

        Depth-first search over compatible children, heaviest subtree
        first, clipped at ``limit`` characters and by the node budget.
        """
        if limit <= 0 or index >= len(chars) or self._budget <= 0:
            return 0
        self._budget -= 1
        kids = self._dict.compatible_children(code, chars[index])
        if not kids:
            return 0
        kids.sort(key=self._popularity_key, reverse=True)
        best = 0
        for _char, child in kids:
            depth = 1 + self._continuation(child, chars, index + 1, limit - 1)
            if depth > best:
                best = depth
                if best >= limit:
                    break
            if self._budget <= 0:
                break
        return best
