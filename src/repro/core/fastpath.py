"""Bit-parallel fast-path encoder: word-packed two-mask ternary matching.

The reference encoder (:meth:`repro.core.encoder.LZWEncoder` with
``engine="reference"``) walks the dictionary trie one candidate child at
a time; profiling shows >90% of serial encode time inside that walk
(the ``compatible_children`` scans and the lookahead DFS around them).
This module keeps the *decision procedure* — the paper's dynamic
don't-care assignment with its exact tie-break and budget semantics —
and replaces the per-candidate Python work with word-wide integer
operations over packed match arrays, the same idiom
:mod:`repro.atpg.ppsfp` uses for bit-parallel fault simulation:

* every dictionary node keeps its children packed into one big integer,
  one ``C_C + 1``-bit lane per child (the extra guard bit makes
  zero-lane detection exact); the X-aware compatibility test
  ``(key ^ value) & care == 0`` runs for *all* candidates of a node in
  a handful of int ops: replicate the character's two masks across the
  lanes with a multiply, XOR/AND, and read the compatible lanes out of
  ``(HIGH - t) & HIGH``;
* a first-symbol index does the same over the active base codes for
  phrase restarts;
* for the lookahead policy, every node additionally keeps *suffix
  packs*: for each depth ``k`` up to the window, one packed integer
  whose lanes are the concatenated ``k``-character strings of all its
  depth-``k`` descendants.  A candidate's unbudgeted window depth is
  the largest ``k`` whose pack has a lane compatible with the first
  ``k`` window characters (one masked compare per depth), and the lane
  popcounts give the candidate's exact unbudgeted DFS node consumption
  — which is how the reference's shared node budget is replicated
  without walking the trie (see ``lookahead_best``).

Around that matching core, the encode loop amortises everything it can:

* the decision character and its lookahead window are pre-packed into
  rolling ``RV``/``RC`` arrays (one backward O(n) pass; entry ``i``
  holds the ``K + 1`` characters from ``i`` in ascending bit order), so
  every scan pattern is one mask of ``RV[i]`` and the pair doubles as a
  ready-made memoisation key;
* decisions memoise on ``(node, trailing chars, RV, RC, stamp)`` where
  the *stamp* is the cheapest value that changes whenever the answer
  could — the allocation counter for base restarts, the node's own
  weight for child decisions (adds elsewhere in the trie cannot change
  a node's candidate set or their weights);
* once the dictionary is full under ``reset_on_full=False`` nothing
  mutates again, so the loop drops into a *frozen phase* replica that
  sheds the stamps and the dead ``dictionary.add`` call — on long
  streams most characters encode there.

Equivalence contract
--------------------
``engine="fast"`` is **byte-identical** to the reference loop: same
code sequence, same dictionary evolution, same recorder counters and
histograms, same cancellation checkpoints.  That holds because the fast
path is a faithful interpreter of the same algorithm, not a different
matcher:

* candidate sets are produced in the reference's order — dictionary
  children in insertion order (ascending code, because codes allocate
  monotonically) and base codes in the live ``_active_bases`` set
  order, snapshotted only between mutations (set iteration is stable
  while the set is unmodified);
* the fully-specified shortcut (``care == (1 << len(char)) - 1`` →
  exact ``dict.get``) is reproduced, including its exact-key semantics
  for the short final character of a stream;
* the lookahead policy's shared node budget is replicated exactly: a
  failing candidate's DFS visits its whole compatible cone, so its
  consumption equals the pack popcount; a full-depth candidate's
  consumption is order-dependent, so those are re-run through a
  literal budget-metered DFS replica whenever the budget could bind
  (``continuation``), with the same heaviest-subtree-first ordering
  and the same decrement/break points;
* the deadline checkpoint fires at the same every-1024-symbols loop
  positions as the reference.

``tests/core/test_engine_differential.py`` locks the contract with
Hypothesis differential properties and exhaustive small-alphabet
enumeration; ``tests/golden`` re-verifies every golden digest through
this path.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..observability import schema as ev
from .config import ENGINES
from .dictionary import LZWDictionary

__all__ = ["ENGINES", "resolve_engine", "PackedCandidateIndex", "encode_fast"]

#: Population count for the wide match bitmaps.  ``int.bit_count`` is a
#: single C call on Python >= 3.10; the ``bin`` fallback keeps the
#: declared 3.9 floor working (it allocates a string proportional to the
#: bitmap width, so the native path matters on wide candidate packs).
if hasattr(int, "bit_count"):  # pragma: no branch
    _popcount = int.bit_count
else:  # pragma: no cover - exercised only on Python 3.9

    def _popcount(x: int) -> int:
        return bin(x).count("1")


def resolve_engine(engine: str) -> str:
    """Map the config knob to a concrete engine (``auto`` → ``fast``).

    The fast path is byte-identical and strictly faster, so ``auto``
    always selects it; ``reference`` survives as the conformance oracle
    and as a hedge while a platform issue is being diagnosed.
    """
    return "fast" if engine == "auto" else engine


def _mask_chunks(mask: int, n: int, width: int) -> List[int]:
    """Split ``mask`` into ``n`` little-endian ``width``-bit chunks.

    Reproduces the per-character masks of
    :func:`repro.bitstream.to_characters` (LSB = first stream bit;
    X-padding contributes absent bits) without materialising a
    TernaryVector per character.  Works block-wise so the stream-wide
    integer is shifted ``n / 256`` times, not ``n`` times — the naive
    per-character shift is quadratic in the stream length.
    """
    out = [0] * n
    w = (1 << width) - 1
    blk = 256
    blkbits = blk * width
    blkmask = (1 << blkbits) - 1
    pos = 0
    while pos < n:
        block = mask & blkmask
        mask >>= blkbits
        stop = pos + blk
        if stop > n:
            stop = n
        for j in range(pos, stop):
            out[j] = block & w
            block >>= width
        pos = stop
    return out


class PackedCandidateIndex:
    """Word-packed two-mask ternary match tables over one dictionary.

    Lanes are ``C_C + 1`` bits wide: the low ``C_C`` bits hold a
    concrete child character (or base code), the top *guard* bit stays
    zero so per-lane zero detection ``(HIGH - t) & HIGH`` cannot borrow
    across lanes.  Tables build lazily per node and are invalidated by
    the encoder at the only two mutation sites (``add`` / ``reset``).
    """

    __slots__ = (
        "_dict",
        "_lane",
        "_ones",
        "_nodes",
        "_bases_list",
        "_bases_packed",
        "_bases_n",
        "_bases_cache",
        "_bases_stale",
    )

    def __init__(self, dictionary: LZWDictionary, char_bits: int) -> None:
        self._dict = dictionary
        self._lane = char_bits + 1
        # _ones[n] replicates a 1 in the LSB of each of n lanes.
        self._ones: List[int] = [0]
        # code -> [packed_keys, keys, codes, {(value, care): candidates}]
        self._nodes: Dict[int, list] = {}
        self._bases_list: List[int] = []
        self._bases_packed = 0
        self._bases_n = 0
        self._bases_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._bases_stale = True

    # ------------------------------------------------------------------
    # Invalidation (called by the encoder at its mutation sites)
    # ------------------------------------------------------------------
    def invalidate_node(self, code: int) -> None:
        """Drop the tables of ``code`` after it gained a child."""
        self._nodes.pop(code, None)

    def invalidate_bases(self) -> None:
        """Drop the first-symbol index after the active-base set grew."""
        self._bases_stale = True

    def clear(self) -> None:
        """Drop everything (after ``dictionary.reset()``)."""
        self._nodes.clear()
        self._bases_stale = True

    # ------------------------------------------------------------------
    # Packed scans
    # ------------------------------------------------------------------
    def _ones_for(self, lanes: int) -> int:
        ones = self._ones
        if lanes >= len(ones):
            width = self._lane
            value = ones[-1]
            for _ in range(len(ones), lanes + 1):
                value = (value << width) | 1
                ones.append(value)
        return ones[lanes]

    def candidates(self, code: int, value: int, care: int) -> Tuple[int, ...]:
        """Children of ``code`` compatible with the ternary char masks.

        Returns ``(char, child, char, child, ...)`` pairs flattened into
        one tuple, in the reference's candidate order (dictionary
        insertion order = ascending child code).  The fully-specified
        shortcut lives in the caller — this is the generic X-aware scan.
        """
        entry = self._nodes.get(code)
        if entry is None:
            kids = self._dict.children(code)
            keys = list(kids)
            packed = 0
            width = self._lane
            shift = 0
            for key in keys:
                packed |= key << shift
                shift += width
            entry = self._nodes[code] = [packed, keys, list(kids.values()), {}]
        cache = entry[3]
        mask_key = (value, care)
        hit = cache.get(mask_key)
        if hit is not None:
            return hit
        keys = entry[1]
        lanes = len(keys)
        width = self._lane
        ones = self._ones_for(lanes)
        high = ones << (width - 1)
        t = (entry[0] ^ (value * ones)) & (care * ones)
        z = (high - t) & high
        codes = entry[2]
        out: List[int] = []
        while z:
            low = z & -z
            lane = low.bit_length() // width - 1
            out.append(keys[lane])
            out.append(codes[lane])
            z &= z - 1
        result = tuple(out)
        cache[mask_key] = result
        return result

    def base_candidates(self, value: int, care: int) -> Tuple[int, ...]:
        """Base codes compatible with the char masks, reference order.

        Mirrors :meth:`LZWDictionary.compatible_bases`: every compatible
        *active* base in live-set iteration order, then the canonical
        zero-fill appended when not already present.  The snapshot is
        refreshed after every mutation of the active set, and set
        iteration order is stable between mutations, so the order is
        exactly what the reference would iterate.
        """
        if self._bases_stale:
            actives = list(self._dict._active_bases)
            packed = 0
            width = self._lane
            shift = 0
            for base in actives:
                packed |= base << shift
                shift += width
            self._bases_list = actives
            self._bases_packed = packed
            self._bases_n = len(actives)
            self._bases_cache = {}
            self._bases_stale = False
        mask_key = (value, care)
        hit = self._bases_cache.get(mask_key)
        if hit is not None:
            return hit
        out: List[int] = []
        lanes = self._bases_n
        if lanes:
            width = self._lane
            ones = self._ones_for(lanes)
            high = ones << (width - 1)
            t = (self._bases_packed ^ (value * ones)) & (care * ones)
            z = (high - t) & high
            bases = self._bases_list
            while z:
                low = z & -z
                out.append(bases[low.bit_length() // width - 1])
                z &= z - 1
        if value not in out:  # zero-fill fallback, as in the reference
            out.append(value)
        result = tuple(out)
        self._bases_cache[mask_key] = result
        return result


def encode_fast(encoder, stream) -> Tuple[List[int], List[int]]:
    """Run one fast-path encode; returns ``(codes, expansion_chars)``.

    ``encoder`` is the owning :class:`~repro.core.encoder.LZWEncoder`
    (config, dictionary, recorder and cancellation token are read from
    it; ``_longest_phrase``/``_total_chars`` are written back so
    ``stats()`` is engine-agnostic).  Control flow is a line-for-line
    replica of the reference loop — see the module docstring for why
    each divergence-prone site is exact.
    """
    cfg = encoder.config
    dictionary = encoder.dictionary
    rec = encoder.recorder
    recording = rec.enabled
    char_bits = cfg.char_bits
    nbits = len(stream)
    pad = -nbits % char_bits
    n = (nbits + pad) // char_bits
    encoder._longest_phrase = 0
    encoder._total_chars = n
    codes: List[int] = []
    expansions: List[int] = []
    if not n:
        return codes, expansions
    if recording:
        rec.incr(ev.ENCODE_CHARS, n)

    cancel = encoder.cancel
    cancelling = cancel is not None
    if cancelling:
        cancel.check()

    # Chunk the stream's two masks directly into per-character arrays —
    # same layout :func:`repro.bitstream.to_characters` produces (LSB =
    # first bit, final character X-padded to full width, so pad mask
    # bits are simply absent) without materialising a TernaryVector per
    # character.
    values = _mask_chunks(stream.value_mask, n, char_bits)
    cares = _mask_chunks(stream.care_mask, n, char_bits)
    fullchar = (1 << char_bits) - 1

    index = PackedCandidateIndex(dictionary, char_bits)
    # Hot read-only views of the dictionary arrays.  reset() rebinds
    # _weight and _children on the instance, so both are re-fetched
    # after every reset; add() and reset() mutate the rest in place.
    weight = dictionary._weight
    children = dictionary._children
    nchars = dictionary._nchars
    active_bases = dictionary._active_bases
    parent = dictionary._parent
    charr = dictionary._char

    policy = cfg.policy
    lookahead_policy = policy == "lookahead"
    window = cfg.lookahead
    budget_limit = cfg.lookahead_budget
    budget = 0
    allocs = dictionary.allocated  # base-decision memo stamp
    reset_on_full = cfg.reset_on_full
    # Once a non-resetting dictionary fills, the fill loop below hands
    # over to a leaner frozen-phase loop (see there).
    frozen_break = lookahead_policy and not reset_on_full
    last_alloc_code = cfg.dict_size - 1
    index_candidates = index.candidates
    # Inlined cache hit paths for the two hottest lookups: the memo
    # misses of the main loop hit these caches far more often than the
    # packed scans behind them.
    index_nodes = index._nodes
    index_base_candidates = index.base_candidates
    popcount = _popcount

    # ------------------------------------------------------------------
    # Lookahead: packed suffix tables + an exact budget replica
    # ------------------------------------------------------------------
    # K = window depth beyond the candidate itself.  packs[k][node] is
    # [pack, nlanes]: one lane per depth-k descendant of node, each lane
    # the concatenation of the k characters on the path (first consumed
    # character in the low bits), k*C_C + 1 bits wide (guard bit on
    # top).  Node -1 is the virtual trie root (parent of the base
    # codes): its depth-k descendants are every allocated entry of
    # length k, which lets one pack test cover all candidates of a
    # *base* decision too.  Levels run to K + 1 because a decision
    # consumes one character before the window: candidate depth d
    # corresponds to level d + 1 of the candidates' common parent.
    # Maintained append-only at the add site, cleared on reset — no
    # other invalidation exists because lanes are never rewritten.
    K = window - 1 if policy == "lookahead" else 0
    KP = K + 1
    packs: List[Dict[int, list]] = [dict() for _ in range(KP + 1)]
    lane_w = [k * char_bits + 1 for k in range(KP + 1)]
    # ones_tabs[k][m] replicates 1 across m lanes of width lane_w[k].
    ones_tabs: List[List[int]] = [[0] for _ in range(KP + 1)]
    # Rolling lookahead windows: RV[i]/RC[i] pack the decision character
    # at position i plus the (up to) K window characters after it, first
    # character in the low bits — chars past the stream end contribute
    # nothing, so a short window near the end is the same integer as its
    # explicit build.  One backward O(n) pass replaces a per-decision
    # packing loop; ``rv & pmask[k]`` is then exactly the level-k scan
    # pattern (decision char + k-1 window chars), and ``rv >> char_bits``
    # recovers the pure window for the per-candidate cone tests.
    pmask = [(1 << (k * char_bits)) - 1 for k in range(K + 2)]
    RV = [0] * n
    RC = [0] * n
    if lookahead_policy:
        kmask = pmask[K]
        rv = rc = 0
        j = n - 1
        while j >= 0:
            rv = values[j] | ((rv & kmask) << char_bits)
            rc = cares[j] | ((rc & kmask) << char_bits)
            RV[j] = rv
            RC[j] = rc
            j -= 1

    def ones_for(k: int, lanes: int) -> int:
        tab = ones_tabs[k]
        if lanes >= len(tab):
            width = lane_w[k]
            value = tab[-1]
            for _ in range(len(tab), lanes + 1):
                value = (value << width) | 1
                tab.append(value)
        return tab[lanes]

    def continuation(code: int, i: int, limit: int) -> int:
        """Literal replica of ``ChildSelector._continuation``.

        Shares the decision's node budget via ``budget``; only runs
        when the budget could bind (see ``lookahead_best``), so its
        per-node cost is off the common path.
        """
        nonlocal budget
        if limit <= 0 or i >= n or budget <= 0:
            return 0
        budget -= 1
        if cares[i] == fullchar:
            child = children[code].get(values[i])
            if child is None:
                return 0
            return 1 + continuation(child, i + 1, limit - 1)
        cands = index_candidates(code, values[i], cares[i])
        if not cands:
            return 0
        if len(cands) > 2:
            order = sorted(
                range(1, len(cands), 2),
                key=lambda p: (weight[cands[p]], -cands[p]),
                reverse=True,
            )
        else:
            order = (1,)
        best = 0
        for p in order:
            depth = 1 + continuation(cands[p], i + 1, limit - 1)
            if depth > best:
                best = depth
                if best >= limit:
                    break
            if budget <= 0:
                break
        return best

    # Decision memo: the winner of a lookahead decision is a pure
    # function of (candidate tuple, window depth, window masks, the sum
    # of the candidates' subtree weights).  The weight sum is a valid
    # monotone stamp: weights only ever increase within a run, and any
    # allocation in or under a candidate's subtree — the only dictionary
    # change that can alter depths, cone counts, sim orderings or argmax
    # keys — walks the weight increment through that candidate, so an
    # equal sum at two different times implies identical per-candidate
    # weights *and* untouched subtrees.  Sibling allocations leave the
    # sum (and the decision) unchanged, which is exactly when a hit is
    # wanted.  Cleared on reset (weights restart, codes reallocate).
    decision_memo: Dict[tuple, int] = {}
    # Per-candidate cache under the decision memo: a candidate's
    # unbudgeted window depth and compatible cone node count are pure
    # functions of (candidate, window, structure <= K below it).
    # ``sver[c]`` is that structure's version: the pack-maintenance
    # walk bumps it for every ancestor within K+1 of a new entry, so
    # it moves exactly when the cone can — allocations elsewhere (or
    # deeper) leave cached cones valid, unlike a weight stamp.
    sver: Dict[int, int] = {}
    cone_cache: Dict[tuple, tuple] = {}
    # Successful full-depth replays: the DFS visits nodes in a fixed
    # (weight-sorted) order and stops at the first full-depth path, so
    # its node consumption nf is deterministic and independent of the
    # remaining budget whenever nf fits (the budget can't reorder a
    # search it never interrupts).  weight[child] stamps the key: every
    # allocation under the candidate bumps it, and both the cone's
    # shape and the DFS's sort keys only change through such adds.
    fullsim_cache: Dict[tuple, int] = {}

    # Seeded dictionary: the suffix packs are maintained append-only at
    # the add site, so a dictionary restored from a snapshot arrives
    # with *empty* packs — the lookahead would silently degrade to the
    # weight argmax and diverge from the seeded reference.  Replay the
    # pack-maintenance walk for every pre-allocated entry in code order
    # (allocation order), which reproduces the exact pack lanes, lane
    # order and ``sver`` counters an uninterrupted run would hold.
    if K and dictionary.allocated:
        sver_bump = sver.get
        for added in range(cfg.base_codes, dictionary.next_code):
            sfx = charr[added]
            prev = added
            anc = parent[added]
            k = 1
            while k <= KP:
                pk = packs[k]
                entry = pk.get(anc)
                if entry is None:
                    pk[anc] = [sfx, 1, [prev]]
                else:
                    entry[0] |= sfx << (entry[1] * lane_w[k])
                    entry[1] += 1
                    entry[2].append(prev)
                sver[anc] = sver_bump(anc, 0) + 1
                if anc == -1:
                    break
                sfx = charr[anc] | (sfx << char_bits)
                prev = anc
                anc = parent[anc]
                k += 1

    def ztest(child: int, k: int, wv: int, wc: int) -> int:
        """Compatible-lane bitmap of ``child``'s depth-``k`` pack (0 = none)."""
        e = packs[k].get(child)
        if e is None:
            return 0
        lanes = e[1]
        tab = ones_tabs[k]
        ones = tab[lanes] if lanes < len(tab) else ones_for(k, lanes)
        t = (e[0] ^ wv * ones) & (wc * ones)
        high = ones << (k * char_bits)
        return (high - t) & high

    sver_get = sver.get

    def cone_counts(child: int, te: int, wv_te: int, wc_te: int) -> tuple:
        """``(full, depth, cnt)`` of ``child``'s compatible window cone.

        ``full`` — reaches the whole ``K``-deep window (DFS consumption
        then depends on visit order); ``depth`` — deepest compatible
        window level; ``cnt`` — nodes the unbudgeted DFS consumes (an
        upper bound for any budgeted one).  Bottom-up over the packs;
        prefix closure means a compatible level implies all shallower
        ones, so the loop stops at the first empty level.
        """
        ckey = (child, te, wv_te, wc_te, sver_get(child, 0))
        hit = cone_cache.get(ckey)
        if hit is None:
            zfull = ztest(child, te, wv_te, wc_te)
            depth = 0
            cnt = 1
            for k in range(1, te):
                pm = pmask[k]
                z = ztest(child, k, wv_te & pm, wc_te & pm)
                if not z:
                    break
                depth = k
                cnt += popcount(z)
            else:
                if zfull:
                    depth = te
            hit = (bool(zfull) and te == K, depth, cnt)
            cone_cache[ckey] = hit
        return hit

    def lookahead_best(
        cands: Tuple[int, ...],
        i: int,
        start: int,
        step: int,
        node: int,
    ) -> int:
        """Replica of ``ChildSelector._lookahead_best``; returns the child.

        ``cands[start::step]`` are the candidate codes — ``(0, 1)`` for
        a base tuple, ``(1, 2)`` for a flattened ``(char, child, ...)``
        children tuple.  Memoisation is the *callers'* job (both have
        O(1) stamped keys); this evaluates the decision in up to three
        stages over the suffix packs:

        * a level scan over the common parent's packs finds the
          unbudgeted winner and the total unbudgeted consumption with
          one masked compare per *level*, not per candidate;
        * if the total proves the reference's shared node budget cannot
          run out — or a conservative per-candidate consumption sum
          proves it survives at least through the winner's cone — that
          winner is returned as-is (later candidates only ever lose
          depth to budget death, so they cannot overtake);
        * otherwise an exact scan replays the budget: failing
          candidates deduct their cone's exact node count (the DFS
          visits the whole compatible cone, so the pack popcounts *are*
          its consumption); full-depth candidates (order-dependent
          consumption) and the cone the budget dies inside re-run the
          literal DFS replica with the exact remaining budget; spent
          budget returns depth 0 without consuming, as the guards do.
        """
        nonlocal budget
        limit = K
        idx = i + 1
        rem = n - idx
        te = limit if rem > limit else rem  # deepest *entered* level
        m = len(cands)
        if te == 0:
            # No window left (stream end) or W == 1: the reference's
            # guards return depth 0 for everyone without consuming
            # budget — argmax of (weight, -code).
            best = cands[start]
            best_w = weight[best]
            for p in range(start + step, m, step):
                child = cands[p]
                child_w = weight[child]
                if child_w > best_w or (child_w == best_w and child < best):
                    best_w = child_w
                    best = child
            return best
        rv = RV[i]
        rc = RC[i]
        # Level scan over the candidates' common parent: level k of
        # node's packs covers every candidate's depth-(k-1) subtree at
        # once (the lane's first character names the candidate), so
        # the exact total unbudgeted consumption — ncand nodes for the
        # candidates themselves plus one per compatible lane at the
        # consuming levels — costs one masked compare and popcount per
        # *level*, not per candidate.  Levels are prefix-closed (a
        # compatible length-k path has a compatible length-(k-1)
        # prefix entry), so the scan stops at the first empty level.
        ncand = (m - start + step - 1) // step
        total = ncand
        ktop = 1  # deepest level with a compatible lane
        ztop = 0
        k = 2
        while k <= te + 1:
            e = packs[k].get(node)
            if e is None:
                break
            # ztest inlined: the scan is the hottest SWAR site.  The
            # level-k pattern — decision char + k-1 window chars — is
            # one mask of the rolling window.
            pm = pmask[k]
            lanes = e[1]
            tab = ones_tabs[k]
            ones = tab[lanes] if lanes < len(tab) else ones_for(k, lanes)
            t = (e[0] ^ (rv & pm) * ones) & (rc & pm) * ones
            high = ones << (k * char_bits)
            zk = (high - t) & high
            if not zk:
                break
            ktop = k
            ztop = zk
            if k <= te:  # consuming levels are 2..te
                total += popcount(zk)
            k += 1
        if ktop == 1:
            # Nobody matches even one window character: every depth is
            # 0 whether or not the budget dies mid-list (spent-budget
            # guards also score 0), so the argmax of (weight, -code)
            # stands unconditionally.
            best = cands[start]
            best_w = weight[best]
            for p in range(start + step, m, step):
                child = cands[p]
                child_w = weight[child]
                if child_w > best_w or (child_w == best_w and child < best):
                    best_w = child_w
                    best = child
            return best
        # Unbudgeted winner: every candidate reaching the deepest
        # compatible level shares depth ktop-1 and beats all shallower
        # ones, so only that level's lanes need the (weight, -code)
        # tie-break.  Each lane's candidate (the path's first-step
        # child — the base itself for root lanes) was recorded at
        # append time, so winners come from an index lookup instead of
        # digging characters out of the fat pack.
        lane_cands = packs[ktop][node][2]
        lw = lane_w[ktop]
        kc = ktop * char_bits  # guard-bit offset within a lane
        best = -1
        best_w = -1
        # 64-bit word walk: set bits are sparse in a fat bitmap, so
        # chunking keeps every per-bit operation on machine ints
        # instead of O(bitmap) bignum ops per extracted lane.  A single
        # surviving lane (the common case at the deepest level) skips
        # the walk entirely.
        z = ztop
        if not z & (z - 1):
            best = lane_cands[(z.bit_length() - 1 - kc) // lw]
            best_w = weight[best]
            z = 0
        pos = -kc
        while z:
            w64 = z & 0xFFFFFFFFFFFFFFFF
            while w64:
                low = w64 & -w64
                cand = lane_cands[(pos + low.bit_length() - 1) // lw]
                w = weight[cand]
                if w > best_w or (w == best_w and cand < best):
                    best_w = w
                    best = cand
                w64 &= w64 - 1
            z >>= 64
            pos += 64
        if total < budget_limit:
            # The shared budget provably cannot run out.
            return best
        # The budget *may* bind — but death only truncates depths, so
        # later candidates can never overtake the unbudgeted winner.
        # If a conservative consumption sum (full cone counts, an upper
        # bound on any DFS's spend) over the winner and everyone before
        # it stays within the budget, the winner's own cone completes
        # and the unbudgeted answer stands.  The pure window masks are
        # only needed from here on, so the common win path never pays
        # for them.
        wv_te = (rv >> char_bits) & pmask[te]
        wc_te = (rc >> char_bits) & pmask[te]
        s = 0
        for p in range(start, m, step):
            child = cands[p]
            s += cone_counts(child, te, wv_te, wc_te)[2]
            if child == best or s > budget_limit:
                break
        if s <= budget_limit:
            return best
        # The budget binds (or cannot be proven not to): exact scan
        # with the shared budget, replicating the reference's
        # candidate-order consumption.
        best = -1
        best_key = None
        r = budget_limit
        for p in range(start, m, step):
            child = cands[p]
            if r <= 0:
                # Spent budget: every remaining candidate scores depth
                # 0 without consuming (the reference's guards), so the
                # rest of the scan degenerates to a (weight, -code)
                # argmax — which cannot win at all once any candidate
                # scored a positive depth.
                if best_key[0] > 0:
                    break
                bw = best_key[1]
                for q in range(p, m, step):
                    ch = cands[q]
                    w = weight[ch]
                    if w > bw or (w == bw and ch < best):
                        bw = w
                        best = ch
                break
            full, depth, cnt = cone_counts(child, te, wv_te, wc_te)
            if full:
                fkey = (child, wv_te, wc_te, weight[child])
                nf = fullsim_cache.get(fkey)
                if nf is not None and nf <= r:
                    r -= nf
                    depth = limit
                else:
                    # Replay the literal DFS with the exact remaining
                    # budget; on success the consumption is budget-
                    # independent, so remember it.
                    budget = r
                    depth = continuation(child, idx, limit)
                    if depth >= limit:
                        fullsim_cache[fkey] = r - budget
                    r = budget
            elif cnt > r:
                # The cone the budget dies inside: replay with the
                # exact remaining budget.
                budget = r
                depth = continuation(child, idx, limit)
                r = budget
            else:
                r -= cnt  # failing cone fits: exact deduction
            key = (depth, weight[child], -child)
            if best_key is None or key > best_key:
                best_key = key
                best = child
            if depth >= limit and r <= 0:
                break
        return best

    def choose_base(i: int) -> int:
        value = values[i]
        care = cares[i]
        if lookahead_policy:
            # Base decisions have up to 2**C_C candidates, so the
            # generic candidate-tuple memo key is expensive even on a
            # hit.  An O(1) key works here: the rolling window packs
            # the decision char and lookahead, and the allocation
            # counter determines the base candidate tuple (the
            # active-base set only changes on add/reset) *and* every
            # base subtree (each allocation's weight walk ends in
            # exactly one base), so together they pin the whole
            # decision.  Once the dictionary freezes, every repeated
            # (char, window) restart is a pure dict hit.
            rem = n - i - 1
            te = K if rem > K else rem
            key = (-1, te, RV[i], RC[i], allocs)
            hit = decision_memo.get(key)
            if hit is not None:
                return hit
            if index._bases_stale:
                bases = index_base_candidates(value, care)
            else:
                bases = index._bases_cache.get((value, care))
                if bases is None:
                    bases = index_base_candidates(value, care)
            if len(bases) == 1:
                best = bases[0]
            else:
                best = lookahead_best(bases, i, 0, 1, -1)
            decision_memo[key] = best
            return best
        bases = index.base_candidates(value, care)
        if len(bases) == 1:
            return bases[0]
        if policy == "first":
            return min(bases)
        best = bases[0]
        best_w = weight[best]
        for base in bases[1:]:
            base_w = weight[base]
            if base_w > best_w or (base_w == best_w and base < best):
                best_w = base_w
                best = base
        return best

    def boundary(bcode: int, head: int) -> None:
        """Reset-or-allocate at a phrase boundary (string(bcode) + head).

        One shared replica of the reference's boundary block, used by
        the in-stream boundaries of the main loop *and* the cross-shard
        link boundary of a seeded continuation — the pack maintenance,
        invalidation and recorder sites must stay literally identical
        at both.
        """
        nonlocal allocs, weight, children
        if (
            reset_on_full
            and not dictionary.is_full
            and dictionary.can_extend(bcode)
            and dictionary.next_code == last_alloc_code
        ):
            dictionary.reset()
            index.clear()
            for pk in packs:
                pk.clear()
            decision_memo.clear()
            sver.clear()
            cone_cache.clear()
            fullsim_cache.clear()
            allocs = dictionary.allocated
            weight = dictionary._weight
            children = dictionary._children
            if recording:
                rec.incr(ev.DICT_RESETS)
            return
        bases_before = len(active_bases)
        added = dictionary.add(bcode, head)
        if added is not None:
            allocs += 1
            index.invalidate_node(bcode)
            if len(active_bases) != bases_before:
                index.invalidate_bases()
            # Append the new entry's path suffix to the packs of its
            # K+1 nearest ancestors: the ancestor at distance k gains a
            # depth-k descendant whose lane is the last k characters of
            # the new string (first consumed lowest).  The walk ends at
            # the virtual root (-1), whose lane is the entry's whole
            # string.
            if K:
                sfx = head
                prev = added  # the path's first-step child from anc
                anc = bcode
                k = 1
                while k <= KP:
                    pk = packs[k]
                    entry = pk.get(anc)
                    if entry is None:
                        pk[anc] = [sfx, 1, [prev]]
                    else:
                        entry[0] |= sfx << (entry[1] * lane_w[k])
                        entry[1] += 1
                        entry[2].append(prev)
                    sver[anc] = sver_get(anc, 0) + 1
                    if anc == -1:
                        break
                    sfx = charr[anc] | (sfx << char_bits)
                    prev = anc
                    anc = parent[anc]
                    k += 1
        if recording:
            if added is not None:
                rec.incr(ev.DICT_ALLOCS)
            elif dictionary.is_full:
                rec.incr(ev.DICT_FULL_SKIPS)
            elif not dictionary.can_extend(bcode):
                rec.incr(ev.DICT_CMDATA_TRUNCATIONS)

    # ------------------------------------------------------------------
    # Main loop — control flow mirrors LZWEncoder._encode_reference
    # ------------------------------------------------------------------
    codes_append = codes.append
    expansions_append = expansions.append
    longest_phrase = 0
    buffer = choose_base(0)
    if encoder.link is not None:
        # Pipelined-wave continuation: replay the cross-shard boundary
        # after the head is chosen (the serial ordering), before any
        # character is consumed — mirrors the reference's seeded path.
        boundary(encoder.link, buffer)
    phrase_start = 0
    i = 1
    while i < n:
        if cancelling and not (i & 1023):  # every CHECK_INTERVAL chars
            cancel.check()
        value = values[i]
        care = cares[i]
        if care == fullchar:
            child = children[buffer].get(value)
            if child is not None:
                buffer = child
                i += 1
                continue
            cands = ()
        elif lookahead_policy:
            # O(1) memo for the whole child decision, same trick as
            # choose_base: (node, char, window) plus ``weight[node]``
            # pin it.  The candidate set and every candidate subtree
            # live under ``node``, and any allocation below ``node``
            # walks its weight, so a stale hit is impossible.  A hit
            # skips candidate materialisation entirely; the sentinel
            # -1 records "no compatible child" (phrase boundary).
            rem = n - i - 1
            te = K if rem > K else rem
            mkey = (buffer, te, RV[i], RC[i], weight[buffer])
            hit = decision_memo.get(mkey)
            if hit is not None:
                if hit >= 0:
                    buffer = hit
                    i += 1
                    continue
                cands = ()
            else:
                e = index_nodes.get(buffer)
                if e is None:
                    cands = index_candidates(buffer, value, care)
                else:
                    cands = e[3].get((value, care))
                    if cands is None:
                        cands = index_candidates(buffer, value, care)
                if cands:
                    if len(cands) == 2:
                        best = cands[1]
                    else:
                        best = lookahead_best(cands, i, 1, 2, buffer)
                    decision_memo[mkey] = best
                    buffer = best
                    i += 1
                    continue
                decision_memo[mkey] = -1
        else:
            cands = index_candidates(buffer, value, care)
        if cands:
            if len(cands) == 2 or policy == "first":
                # single candidate, or lowest child code — candidates
                # are stored in ascending-code order, so lane 0 wins
                buffer = cands[1]
            else:  # popular
                best = cands[1]
                best_w = weight[best]
                for p in range(3, len(cands), 2):
                    child = cands[p]
                    child_w = weight[child]
                    if child_w > best_w or (child_w == best_w and child < best):
                        best_w = child_w
                        best = child
                buffer = best
            i += 1
            continue
        # Phrase boundary: emit, maybe allocate/reset, restart.
        codes_append(buffer)
        expansions_append(nchars[buffer])
        phrase_len = i - phrase_start
        if phrase_len > longest_phrase:
            longest_phrase = phrase_len
        if recording:
            _record_phrase(rec, char_bits, cares, phrase_start, i)
        head = choose_base(i)
        boundary(buffer, head)
        buffer = head
        phrase_start = i
        i += 1
        if frozen_break and dictionary.is_full:
            break
    # ------------------------------------------------------------------
    # Frozen phase — the dictionary is full and cannot reset, so no
    # decision input ever mutates again: ``allocs``, every weight and
    # every pack are constants for the rest of the stream.  This tight
    # replica of the loop above drops the weight stamp from the memo
    # key (nothing can invalidate a hit any more) and skips the dead
    # ``dictionary.add`` attempt at each boundary, keeping only its
    # recorder counter.  Most of a long stream encodes here — the
    # dictionary fills within the first few thousand characters.
    # ------------------------------------------------------------------
    while i < n:
        if cancelling and not (i & 1023):  # every CHECK_INTERVAL chars
            cancel.check()
        value = values[i]
        care = cares[i]
        if care == fullchar:
            child = children[buffer].get(value)
            if child is not None:
                buffer = child
                i += 1
                continue
        else:
            rem = n - i - 1
            te = K if rem > K else rem
            mkey = (buffer, te, RV[i], RC[i])
            hit = decision_memo.get(mkey)
            if hit is not None:
                if hit >= 0:
                    buffer = hit
                    i += 1
                    continue
            else:
                e = index_nodes.get(buffer)
                if e is None:
                    cands = index_candidates(buffer, value, care)
                else:
                    cands = e[3].get((value, care))
                    if cands is None:
                        cands = index_candidates(buffer, value, care)
                if cands:
                    if len(cands) == 2:
                        best = cands[1]
                    else:
                        best = lookahead_best(cands, i, 1, 2, buffer)
                    decision_memo[mkey] = best
                    buffer = best
                    i += 1
                    continue
                decision_memo[mkey] = -1
        # Phrase boundary: emit and restart — the full dictionary turns
        # the reference's add attempt into a counted no-op.
        codes_append(buffer)
        expansions_append(nchars[buffer])
        phrase_len = i - phrase_start
        if phrase_len > longest_phrase:
            longest_phrase = phrase_len
        if recording:
            _record_phrase(rec, char_bits, cares, phrase_start, i)
            rec.incr(ev.DICT_FULL_SKIPS)
        buffer = choose_base(i)
        phrase_start = i
        i += 1
    codes_append(buffer)
    expansions_append(nchars[buffer])
    phrase_len = n - phrase_start
    if phrase_len > longest_phrase:
        longest_phrase = phrase_len
    if recording:
        _record_phrase(rec, char_bits, cares, phrase_start, n)
        rec.incr(ev.ENCODE_CODES, len(codes))
        rec.observe(ev.HIST_CODES_PER_WIDTH, cfg.code_bits, len(codes))
    encoder._longest_phrase = longest_phrase
    return codes, expansions


def _record_phrase(rec, char_bits: int, cares, start: int, end: int) -> None:
    """Recording-path replica of ``LZWEncoder._record_phrase``.

    Every character is ``char_bits`` wide (the final one is X-padded,
    and padding bits have zero care), so the X count per character is
    ``char_bits - popcount(care)`` — identical to the reference's
    ``TernaryVector.x_count`` over the padded characters.
    """
    xbits = 0
    for j in range(start, end):
        xbits += char_bits - _popcount(cares[j])
    rec.observe(ev.HIST_PHRASE_LEN, end - start)
    rec.observe(ev.HIST_XBITS_PER_PHRASE, xbits)
    rec.incr(ev.ENCODE_XBITS, xbits)
