"""The paper's contribution: don't-care-aware LZW test compression."""

from .config import ConfigError, ENGINES, LZWConfig, POLICIES
from .decoder import (
    DecodeError,
    LZWDecodeError,
    decode,
    decode_codes,
    derive_final_snapshot,
    iter_decode,
)
from .dictionary import DictionarySnapshot, LZWDictionary
from .dontcare import STATIC_FILLS, ChildSelector, static_fill
from .encoder import CompressedStream, EncodeStats, LZWEncoder
from .fastpath import PackedCandidateIndex, encode_fast, resolve_engine
from .metrics import (
    compression_percent,
    compression_ratio,
    geometric_mean,
    x_density_percent,
)
from .multichain import (
    MultiChainResult,
    chain_streams,
    compress_interleaved,
    compress_per_chain,
    deinterleave_stream,
    interleave_stream,
    partition_chains,
)
from .pipeline import CompressionResult, compress, compress_batch, decompress
from .stream import StreamDecoder, StreamEncoder, chars_to_vector

__all__ = [
    "ENGINES",
    "POLICIES",
    "STATIC_FILLS",
    "PackedCandidateIndex",
    "ChildSelector",
    "CompressedStream",
    "CompressionResult",
    "ConfigError",
    "DecodeError",
    "DictionarySnapshot",
    "EncodeStats",
    "LZWConfig",
    "LZWDecodeError",
    "LZWDictionary",
    "LZWEncoder",
    "MultiChainResult",
    "StreamDecoder",
    "StreamEncoder",
    "chain_streams",
    "chars_to_vector",
    "compress",
    "compress_batch",
    "compress_interleaved",
    "compress_per_chain",
    "deinterleave_stream",
    "interleave_stream",
    "partition_chains",
    "compression_percent",
    "compression_ratio",
    "decode",
    "decode_codes",
    "decompress",
    "derive_final_snapshot",
    "encode_fast",
    "geometric_mean",
    "iter_decode",
    "resolve_engine",
    "static_fill",
    "x_density_percent",
]
