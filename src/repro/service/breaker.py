"""Circuit breaker around the service's shared worker execution path.

When the workers start failing *consecutively* — the encode path is
broken, a dependency is wedged, every attempt ends in a typed
:class:`~repro.reliability.errors.ShardError` after the supervisor's
retries — continuing to accept work just burns each request's full
retry budget before failing it anyway.  The breaker converts that into
fast, honest rejection:

* **closed** — normal operation; failures are counted, any success
  resets the count;
* **open** — entered after ``threshold`` consecutive failures; every
  request is rejected immediately (reason ``breaker_open``, a 503-style
  reply) for ``cooldown`` seconds;
* **half-open** — after the cooldown, exactly *one* probe request is
  let through; its success closes the breaker, its failure re-opens it
  for another cooldown.

Failures that are the *client's* fault (bad cube text, corrupt
containers, expired deadlines) never touch the breaker — only
exhausted-supervisor failures do, which is what makes it a signal about
the pool rather than about traffic quality.

The clock is injectable; state transitions are serialised by a lock so
concurrent workers agree on who the half-open probe is.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..reliability.errors import ConfigError

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure breaker with a single half-open probe."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ConfigError(
                "breaker threshold must be >= 1",
                field="breaker_threshold",
                value=threshold,
            )
        if cooldown < 0:
            raise ConfigError(
                "breaker cooldown must be non-negative",
                field="breaker_cooldown",
                value=cooldown,
            )
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False

    @property
    def state(self) -> str:
        """Current state, re-evaluating an elapsed cooldown."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def _maybe_half_open(self) -> None:
        if (
            self._state == self.OPEN
            and self._clock() >= self._opened_at + self.cooldown
        ):
            self._state = self.HALF_OPEN
            self._probe_outstanding = False

    def allow(self) -> bool:
        """Whether a request may proceed right now.

        In half-open state exactly one caller gets ``True`` (the probe)
        until its outcome is recorded; everyone else is rejected.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN and not self._probe_outstanding:
                self._probe_outstanding = True
                return True
            return False

    def retry_after(self) -> float:
        """Seconds until the next half-open probe could be admitted.

        Zero when the breaker is closed or already half-open; clients
        that see a ``breaker_open`` rejection can use this as an honest
        back-off hint instead of guessing.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state != self.OPEN:
                return 0.0
            return max(0.0, self._opened_at + self.cooldown - self._clock())

    def record_success(self) -> None:
        """A permitted request succeeded: close and reset."""
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED
            self._probe_outstanding = False

    def record_failure(self) -> None:
        """A permitted request failed its every recovery path."""
        with self._lock:
            self._failures += 1
            if self._state == self.HALF_OPEN or self._failures >= self.threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probe_outstanding = False
