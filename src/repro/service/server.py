"""The long-running compression service behind ``repro serve``.

Dataflow (one request)::

    client ──NDJSON──▶ connection thread                    (protocol)
                         │  parse / limits / rate limit     (admission)
                         │  draining? → typed 503
                         ▼
                   AdmissionQueue (bounded; full → typed 429)
                         │
                         ▼
                   worker thread ── breaker gate ──▶ run_supervised
                         │            (open → 503)    (RetryPolicy,
                         │                             typed ShardError)
                         ▼
                   reply writer (per-connection lock)

Robustness envelope, in one place:

* **admission control** — the queue is the only buffer; a full queue or
  a rate-limited client gets an immediate structured 429-style reply
  (:class:`~repro.reliability.errors.OverloadError`), never a hang;
* **deadlines** — every request carries a
  :class:`~repro.service.cancel.CancellationToken`; expired-before-start
  requests are rejected without work, in-flight ones are stopped inside
  the encoder's symbol loop and replied 408;
* **circuit breaker** — request execution reuses the batch
  supervisor's :func:`~repro.parallel.supervisor.run_supervised`
  (bounded :class:`~repro.parallel.supervisor.RetryPolicy` attempts,
  typed :class:`~repro.reliability.errors.ShardError` on exhaustion);
  consecutive ShardErrors open the breaker, a half-open probe closes it;
* **protocol defence** — garbage headers, oversized frames and
  slow-loris clients become typed replies and a closed connection; a
  client disconnecting mid-reply is counted, not fatal;
* **graceful drain** — :meth:`CompressionServer.drain` stops accepting,
  sheds every queued-but-unstarted request with a typed reply, lets
  in-flight work finish (or cancels it when the grace expires), flushes
  a final metrics snapshot and returns 0.

Results are byte-identical to the serial path: ``compress`` requests
run the same :func:`repro.core.compress` + :func:`repro.container.
dump_bytes` pair the CLI uses, so an accepted request's container
equals ``repro compress -o`` on the same input, bit for bit.
"""

from __future__ import annotations

import base64
import binascii
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..container import SEED_BLOB, SegmentSeed, decode_container, dump_bytes, dump_segments
from ..core import DictionarySnapshot, LZWConfig, compress
from ..observability import CounterRecorder, Recorder, metrics_snapshot
from ..observability import schema as ev
from ..parallel.supervisor import RetryPolicy, run_supervised
from ..reliability.errors import (
    ConfigError,
    ContainerError,
    DeadlineError,
    DecodeError,
    OverloadError,
    ProtocolError,
    ShardError,
    StreamError,
    TestFileError,
)
from ..testfile import parse_test_text
from .admission import AdmissionQueue, RateLimiter
from .breaker import CircuitBreaker
from .cancel import CancellationToken
from .protocol import (
    DEFAULT_MAX_PAYLOAD,
    MessageStream,
    error_reply,
    ok_reply,
)

__all__ = ["ServiceConfig", "CompressionServer", "FORCED_EXIT_CODE"]

#: Exit status of a second SIGTERM/SIGINT during drain (forced exit).
FORCED_EXIT_CODE = 70

#: Ops that run on the worker pool (and therefore meet the breaker).
POOL_OPS = frozenset(
    {"compress", "compress_stream", "decompress", "verify", "sleep", "fail"}
)
#: Ops answered inline on the connection thread (cheap, never queued).
INLINE_OPS = frozenset({"ping", "metrics"})
#: Ops only enabled by ``debug_ops`` (test/soak instrumentation).
DEBUG_OPS = frozenset({"sleep", "fail"})

#: ``config`` keys a request may set (mirrors the CLI's LZW options).
_CONFIG_KEYS = frozenset(
    {
        "char_bits",
        "dict_size",
        "entry_bits",
        "policy",
        "lookahead",
        "reset_on_full",
        "engine",
    }
)

#: Errors that are the request's fault: replied, never retried, and
#: never counted against the circuit breaker.
_CLIENT_ERRORS = (
    DeadlineError,
    ProtocolError,
    ConfigError,
    TestFileError,
    ContainerError,
    DecodeError,
    StreamError,
    OverloadError,
)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one server instance (validated at construction)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: ephemeral, resolved at bind time
    socket_path: Optional[str] = None  # set: serve a unix socket instead
    workers: int = 2
    queue_depth: int = 16
    max_payload: int = DEFAULT_MAX_PAYLOAD
    io_timeout: float = 10.0
    default_deadline: Optional[float] = 30.0
    max_deadline: float = 300.0
    rate_limit: Optional[float] = None
    rate_burst: Optional[int] = None
    breaker_threshold: int = 5
    breaker_cooldown: float = 5.0
    retry_attempts: int = 2
    drain_grace: float = 10.0
    metrics_json: Optional[str] = None
    debug_ops: bool = False

    def __post_init__(self) -> None:
        for name, minimum in (
            ("workers", 1),
            ("queue_depth", 1),
            ("max_payload", 1),
            ("breaker_threshold", 1),
            ("retry_attempts", 1),
        ):
            if getattr(self, name) < minimum:
                raise ConfigError(
                    f"{name} must be >= {minimum}",
                    field=name,
                    value=getattr(self, name),
                )
        for name in ("io_timeout", "max_deadline", "breaker_cooldown", "drain_grace"):
            if getattr(self, name) is not None and getattr(self, name) <= 0:
                raise ConfigError(
                    f"{name} must be positive",
                    field=name,
                    value=getattr(self, name),
                )


class _LockedRecorder(Recorder):
    """Thread-safety shim: many threads share the server's recorder."""

    def __init__(self, inner: Recorder) -> None:
        self.inner = inner
        self.enabled = inner.enabled
        self._lock = threading.Lock()

    def incr(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.inner.incr(name, value)

    def observe(self, name: str, value: int, count: int = 1) -> None:
        with self._lock:
            self.inner.observe(name, value, count)

    def span(self, name: str):
        # Span records land through the child's own sink; the service
        # recorder is counters-only, so this stays the null span.
        return self.inner.span(name)

    def merge_child(self, snapshot: Optional[dict], label: str) -> None:
        with self._lock:
            self.inner.merge_child(snapshot, label)

    def snapshot(self) -> dict:
        with self._lock:
            return self.inner.snapshot()


@dataclass
class _Job:
    """One admitted request, in flight between admission and reply."""

    header: Dict[str, Any]
    payload: bytes
    token: CancellationToken
    config: Optional[LZWConfig]
    writer: "_Connection"
    received_at: float
    op: str = field(init=False)
    request_id: Any = field(init=False)

    def __post_init__(self) -> None:
        self.op = self.header.get("op")
        self.request_id = self.header.get("id")


class _Connection:
    """Server side of one client connection: framed I/O + write lock."""

    def __init__(self, sock: socket.socket, client_id: str, server: "CompressionServer") -> None:
        self.sock = sock
        self.client_id = client_id
        self.server = server
        self.stream = MessageStream(
            sock,
            max_payload=server.config.max_payload,
            io_timeout=server.config.io_timeout,
            stop=lambda: server._stopping,
        )
        self._write_lock = threading.Lock()
        self.alive = True

    def reply(self, header: Dict[str, Any], payload: bytes = b"") -> bool:
        """Send one reply; False (and a counter) if the client is gone."""
        with self._write_lock:
            if not self.alive:
                return False
            try:
                self.stream.send_message(header, payload)
                return True
            except OSError:
                self.alive = False
                rec = self.server.recorder
                if rec.enabled:
                    rec.incr(ev.SERVICE_DISCONNECTS)
                return False

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class CompressionServer:
    """Concurrent compress/decompress/verify service with a full
    admission → breaker → pool robustness envelope (module docstring).
    """

    def __init__(
        self, config: Optional[ServiceConfig] = None, recorder: Optional[Recorder] = None
    ) -> None:
        self.config = config or ServiceConfig()
        self.recorder: Recorder = _LockedRecorder(
            recorder if recorder is not None else CounterRecorder()
        )
        self.queue: AdmissionQueue = AdmissionQueue(self.config.queue_depth)
        self.limiter = RateLimiter(self.config.rate_limit, self.config.rate_burst)
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold, self.config.breaker_cooldown
        )
        self._retry_policy = RetryPolicy(
            max_attempts=self.config.retry_attempts, backoff_base=0.01, backoff_max=0.1
        )
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._conn_threads: List[threading.Thread] = []
        self._connections: List[_Connection] = []
        self._conn_lock = threading.Lock()
        self._inflight: Dict[int, _Job] = {}
        self._inflight_lock = threading.Lock()
        self._draining = False
        self._stopping = False
        self._drain_event = threading.Event()
        self._started = False

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> Union[Tuple[str, str, int], Tuple[str, str]]:
        """The bound address (``("tcp", host, port)`` or ``("unix", path)``)."""
        if self.config.socket_path:
            return ("unix", self.config.socket_path)
        host, port = self._listener.getsockname()[:2]
        return ("tcp", host, port)

    @property
    def address_str(self) -> str:
        addr = self.address
        return f"unix:{addr[1]}" if addr[0] == "unix" else f"{addr[1]}:{addr[2]}"

    @property
    def state(self) -> str:
        if self._stopping:
            return "stopped"
        return "draining" if self._draining else "running"

    def start(self) -> None:
        """Bind, listen and start the accept + worker threads."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        if self.config.socket_path:
            path = self.config.socket_path
            if os.path.exists(path):
                os.unlink(path)  # stale socket from a dead server
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        accept = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{index}", daemon=True
            )
            worker.start()
            self._threads.append(worker)

    def request_drain(self) -> None:
        """Signal-safe drain trigger (idempotent)."""
        self._drain_event.set()

    def serve_forever(self) -> int:
        """Block until a drain is requested, then drain; returns 0."""
        while not self._drain_event.wait(timeout=0.2):
            pass
        return self.drain()

    # -- drain ---------------------------------------------------------

    def drain(self) -> int:
        """Graceful shutdown: shed queued work, finish in-flight, exit 0.

        1. stop accepting (listener closed, new requests on live
           connections get typed ``draining`` replies);
        2. flush the queue — every queued-but-unstarted request gets a
           typed shed reply;
        3. wait up to ``drain_grace`` for in-flight requests, then
           cancel their tokens (they reply 408 and the workers exit);
        4. close connections, flush the final metrics snapshot.
        """
        self._draining = True
        self._drain_event.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        pending = self.queue.close()
        rec = self.recorder
        for job in pending:
            if rec.enabled:
                rec.incr(ev.SERVICE_DRAINED)
            job.writer.reply(
                error_reply(
                    job.request_id,
                    OverloadError(
                        "server draining before this request started",
                        reason="draining",
                        retry_after=self.config.drain_grace,
                    ),
                )
            )
        deadline = time.monotonic() + self.config.drain_grace
        workers = [t for t in self._threads if t.name.startswith("repro-serve-worker")]
        for thread in workers:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        if any(thread.is_alive() for thread in workers):
            # Grace expired: cancel every in-flight token; the encoder
            # checkpoints turn that into 408 replies promptly.
            with self._inflight_lock:
                for job in self._inflight.values():
                    job.token.cancel()
            for thread in workers:
                thread.join(timeout=2.0)
        self._stopping = True
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        for thread in self._conn_threads:
            thread.join(timeout=1.0)
        if self.config.socket_path and os.path.exists(self.config.socket_path):
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass
        if self.config.metrics_json:
            from ..observability import write_metrics_json

            write_metrics_json(self.recorder, self.config.metrics_json)
        return 0

    # -- accept / connection threads ------------------------------------

    def _accept_loop(self) -> None:
        while not self._draining:
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by drain
            client_id = addr[0] if isinstance(addr, tuple) and addr else (
                f"unix:{conn.fileno()}"
            )
            connection = _Connection(conn, client_id, self)
            with self._conn_lock:
                self._connections.append(connection)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="repro-serve-conn",
                daemon=True,
            )
            thread.start()
            self._conn_threads.append(thread)

    def _serve_connection(self, connection: _Connection) -> None:
        rec = self.recorder
        try:
            while not self._stopping and connection.alive:
                try:
                    message = connection.stream.recv_message()
                except ProtocolError as exc:
                    # Framing is gone: one typed reply, then close (the
                    # stream cannot be resynchronised after bad bytes).
                    if rec.enabled:
                        rec.incr(ev.SERVICE_PROTOCOL_ERRORS)
                    connection.reply(error_reply(None, exc))
                    break
                if message is None:
                    break
                header, payload = message
                if rec.enabled:
                    rec.incr(ev.SERVICE_REQUESTS)
                self._admit(connection, header, payload)
        finally:
            connection.close()
            with self._conn_lock:
                if connection in self._connections:
                    self._connections.remove(connection)

    def _admit(
        self, connection: _Connection, header: Dict[str, Any], payload: bytes
    ) -> None:
        """Validate and enqueue one parsed request (or shed it, typed)."""
        rec = self.recorder
        request_id = header.get("id")
        try:
            op = header.get("op")
            known = POOL_OPS | INLINE_OPS
            if not isinstance(op, str) or op not in known or (
                op in DEBUG_OPS and not self.config.debug_ops
            ):
                raise ProtocolError(
                    f"unknown op {op!r}", reason="bad_field", field="op"
                )
            if op in INLINE_OPS:
                self._reply_inline(connection, op, request_id)
                return
            token = self._token_for(header)
            if self._draining:
                if rec.enabled:
                    rec.incr(ev.SERVICE_DRAINED)
                raise OverloadError(
                    "server is draining, request shed",
                    reason="draining",
                    retry_after=self.config.drain_grace,
                )
            if not self.limiter.try_acquire(connection.client_id):
                if rec.enabled:
                    rec.incr(ev.SERVICE_SHED)
                raise OverloadError(
                    "client rate limit exceeded",
                    reason="rate_limited",
                    client=connection.client_id,
                    retry_after=max(
                        0.001,
                        self.limiter.seconds_until_token(connection.client_id),
                    ),
                )
            config = self._config_for(header)
            job = _Job(
                header=header,
                payload=payload,
                token=token,
                config=config,
                writer=connection,
                received_at=time.monotonic(),
            )
            try:
                self.queue.submit(job)
            except OverloadError:
                if rec.enabled:
                    rec.incr(ev.SERVICE_SHED)
                raise
            if rec.enabled:
                rec.incr(ev.SERVICE_ACCEPTED)
        except _CLIENT_ERRORS as exc:
            connection.reply(error_reply(request_id, exc))

    def _reply_inline(
        self, connection: _Connection, op: str, request_id: Any
    ) -> None:
        """ping/metrics: answered on the connection thread, never queued."""
        if op == "ping":
            connection.reply(
                ok_reply(
                    request_id,
                    state=self.state,
                    queue_depth=self.queue.depth,
                    breaker=self.breaker.state,
                )
            )
        else:  # metrics
            connection.reply(
                ok_reply(request_id, metrics=metrics_snapshot(self.recorder))
            )

    def _token_for(self, header: Dict[str, Any]) -> CancellationToken:
        deadline_ms = header.get("deadline_ms")
        if deadline_ms is None:
            seconds = self.config.default_deadline
        else:
            if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
                raise ProtocolError(
                    "deadline_ms must be a positive number",
                    reason="bad_field",
                    field="deadline_ms",
                )
            seconds = min(deadline_ms / 1000.0, self.config.max_deadline)
        return CancellationToken.after(seconds)

    def _config_for(self, header: Dict[str, Any]) -> Optional[LZWConfig]:
        raw = header.get("config")
        if raw is None:
            return None
        if not isinstance(raw, dict):
            raise ProtocolError(
                "config must be a JSON object", reason="bad_field", field="config"
            )
        unknown = set(raw) - _CONFIG_KEYS
        if unknown:
            raise ConfigError(
                f"unknown config key(s): {', '.join(sorted(unknown))}",
                field="config",
            )
        return LZWConfig(**raw)  # raises typed ConfigError on bad values

    # -- worker threads ------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self.queue.take(timeout=0.2)
            if job is None:
                if self.queue.closed:
                    return
                continue
            with self._inflight_lock:
                self._inflight[id(job)] = job
            try:
                self._process(job)
            finally:
                with self._inflight_lock:
                    self._inflight.pop(id(job), None)

    def _process(self, job: _Job) -> None:
        """Reply bookkeeping around one job, execution model agnostic.

        Everything specific to *how* a job runs — breaker gates, the
        supervised pool, or (in the fleet dispatcher subclass) routing
        to a backend — lives behind :meth:`_execute_job`; this method
        only turns its outcome into exactly one reply plus counters.
        """
        rec = self.recorder
        started = time.monotonic()
        header: Dict[str, Any]
        payload = b""
        try:
            job.token.check()  # expired while queued: no work, reply 408
            fields, payload = self._execute_job(job)
            header = ok_reply(job.request_id, **fields)
            if rec.enabled:
                rec.incr(ev.SERVICE_COMPLETED)
        except ShardError as exc:
            if rec.enabled:
                rec.incr(ev.SERVICE_ERRORS)
            header = error_reply(job.request_id, exc)
            payload = b""
        except _CLIENT_ERRORS as exc:
            if rec.enabled:
                if isinstance(exc, DeadlineError):
                    rec.incr(ev.SERVICE_DEADLINE_EXCEEDED)
                elif not isinstance(exc, OverloadError):
                    rec.incr(ev.SERVICE_ERRORS)
            header = error_reply(job.request_id, exc)
            payload = b""
        if rec.enabled:
            elapsed_ms = int((time.monotonic() - started) * 1000)
            rec.observe(ev.HIST_REQUEST_LATENCY_MS, elapsed_ms)
        job.writer.reply(header, payload)

    def _execute_job(self, job: _Job) -> Tuple[Dict[str, Any], bytes]:
        """Run one admitted job; returns ``(reply fields, payload)``.

        The local execution model: breaker gate, then the supervised
        worker pool.  Client-class errors are raised for ``_process`` to
        reply (they count as breaker successes — the infrastructure
        worked, the input didn't); a ShardError records a breaker
        failure and propagates.
        """
        rec = self.recorder
        if not self.breaker.allow():
            if rec.enabled:
                rec.incr(ev.SERVICE_BREAKER_OPEN)
            raise OverloadError(
                "circuit breaker open, request shed",
                reason="breaker_open",
                retry_after=self.breaker.retry_after() or 0.05,
            )
        try:
            outcome = self._execute_supervised(job)
        except ShardError:
            self.breaker.record_failure()
            raise
        if isinstance(outcome, _CLIENT_ERRORS):
            self.breaker.record_success()  # infra worked; input didn't
            raise outcome
        self.breaker.record_success()
        return outcome

    def _execute_supervised(self, job: _Job):
        """Run one job through the supervisor's retry machinery.

        Reuses :func:`run_supervised` inline (``workers=1``): bounded
        :class:`RetryPolicy` attempts with deterministic backoff, and a
        typed :class:`ShardError` when every attempt failed — exactly
        the failure unit the circuit breaker counts.  Client-class
        errors are returned (not raised) by the attempt callable so the
        supervisor never retries them.
        """

        def attempt(_attempt_index: int):
            try:
                return self._handle_op(job)
            except _CLIENT_ERRORS as exc:
                return exc

        results = run_supervised(
            worker=attempt,
            keys=[(0, 0)],
            make_args=lambda _key, attempt_index: attempt_index,
            workers=1,
            retry_policy=self._retry_policy,
            recorder=self.recorder,
        )
        return results[(0, 0)]

    # -- request handlers ----------------------------------------------

    def _handle_op(self, job: _Job) -> Tuple[Dict[str, Any], bytes]:
        """Execute one op; returns (reply fields, reply payload)."""
        token = job.token
        token.check()
        op = job.op
        if op == "compress":
            return self._op_compress(job)
        if op == "compress_stream":
            return self._op_compress_stream(job)
        if op == "decompress":
            stream = decode_container(job.payload, recorder=self.recorder)
            token.check()
            return {"bits": len(stream)}, str(stream).encode("ascii")
        if op == "verify":
            from ..reliability.verify import verify_container

            report = verify_container(job.payload, None, recorder=self.recorder)
            return (
                {"verify_exit_code": report.exit_code, "detail": report.describe()},
                b"",
            )
        if op == "sleep":  # debug op: deterministic slow request
            seconds = float(job.header.get("seconds", 0.1))
            deadline = time.monotonic() + seconds
            while time.monotonic() < deadline:
                token.check()
                time.sleep(0.01)
            return {"slept": seconds}, b""
        if op == "fail":  # debug op: deterministic pool failure
            from ..reliability.chaos import InjectedWorkerError

            raise InjectedWorkerError("injected service worker failure")
        raise ProtocolError(f"unknown op {op!r}", reason="bad_field", field="op")

    def _op_compress(self, job: _Job) -> Tuple[Dict[str, Any], bytes]:
        try:
            text = job.payload.decode("utf-8")
        except UnicodeDecodeError:
            raise TestFileError(
                "compress payload is not UTF-8 cube text", source="request"
            ) from None
        test_set = parse_test_text(text, name="request")
        config = job.config or LZWConfig()
        seed = self._parse_seed(job, config)
        result = compress(
            test_set.to_stream(),
            config,
            recorder=self.recorder,
            cancel=job.token,
            seed=seed,
        )
        if seed is not None:
            # A warm-compressed stream only decodes under its seed, so
            # the reply container must carry it: v4, one blob segment.
            container = dump_segments(
                [result.compressed],
                [result.assigned_stream],
                recorder=self.recorder,
                seeds=[SegmentSeed(SEED_BLOB, seed, None)],
            )
        else:
            container = dump_bytes(
                result.compressed, result.assigned_stream, recorder=self.recorder
            )
        job.token.check()
        fields = {
            "original_bits": result.original_bits,
            "compressed_bits": result.compressed_bits,
            "num_codes": result.compressed.num_codes,
            "ratio_percent": round(result.ratio_percent, 4),
        }
        if seed is not None:
            fields["seed_digest"] = seed.digest
        return fields, container

    def _op_compress_stream(self, job: _Job) -> Tuple[Dict[str, Any], bytes]:
        """Chunked raw-bytes compression into a v5 frame journal.

        The payload is opaque bytes (the X-density-0 degenerate mode);
        the worker feeds it to the incremental encoder ``chunk_bytes``
        at a time, checking the request's cancellation token *between
        every chunk* — a deadline that expires mid-stream stops at the
        next chunk boundary and replies 408 instead of finishing a
        doomed encode.  Backpressure is the service's existing
        admission envelope: the bounded queue and rate limiter shed
        with typed 429s before a stream is ever started, and worker
        memory stays bounded by one chunk plus the dictionary
        regardless of payload size.  The reply payload is the complete
        v5 container — byte-identical to
        ``repro compress --stream`` on the same bytes and settings.
        """
        import io

        from ..bitstream import TernaryVector
        from ..core.stream import StreamEncoder
        from ..streamio import DEFAULT_CODES_PER_FRAME, StreamContainerWriter

        rec = self.recorder
        config = job.config or LZWConfig()
        chunk_bytes = job.header.get("chunk_bytes", 1 << 16)
        if not isinstance(chunk_bytes, int) or chunk_bytes < 1:
            raise ProtocolError(
                "chunk_bytes must be a positive integer",
                reason="bad_field",
                field="chunk_bytes",
            )
        codes_per_frame = job.header.get("codes_per_frame", DEFAULT_CODES_PER_FRAME)
        if not isinstance(codes_per_frame, int) or codes_per_frame < 1:
            raise ProtocolError(
                "codes_per_frame must be a positive integer",
                reason="bad_field",
                field="codes_per_frame",
            )
        data = job.payload
        encoder = StreamEncoder(config, recorder=rec, cancel=job.token)
        sink = io.BytesIO()
        writer = StreamContainerWriter(
            config, sink, codes_per_frame=codes_per_frame, recorder=rec
        )
        chunks = 0
        for start in range(0, len(data), chunk_bytes):
            job.token.check()  # per-chunk deadline/cancellation checkpoint
            buf = data[start : start + chunk_bytes]
            writer.write_codes(
                encoder.feed(
                    TernaryVector.from_int(
                        int.from_bytes(buf, "little"), len(buf) * 8
                    )
                )
            )
            chunks += 1
            if rec.enabled:
                rec.incr(ev.STREAM_CHUNKS_FED)
        job.token.check()
        writer.finalize(encoder.finalize(), encoder.original_bits)
        container = sink.getvalue()
        ratio = (
            100.0 * (1.0 - len(container) / len(data)) if data else 0.0
        )
        fields = {
            "original_bits": encoder.original_bits,
            "container_bytes": len(container),
            "frames": writer.frames_written,
            "chunks": chunks,
            "ratio_percent": round(ratio, 4),
        }
        return fields, container

    @staticmethod
    def _parse_seed(job: _Job, config: LZWConfig) -> Optional[DictionarySnapshot]:
        """Decode the optional base64 ``seed`` request field.

        The snapshot is validated structurally (magic, CRC, entries)
        and against the request's LZW config before any compression
        work starts; a bad seed is a client error, never a pool crash.
        """
        encoded = job.header.get("seed")
        if encoded is None:
            return None
        if not isinstance(encoded, str):
            raise ProtocolError(
                "seed must be a base64 string", reason="bad_field", field="seed"
            )
        try:
            blob = base64.b64decode(encoded, validate=True)
        except (binascii.Error, ValueError):
            raise ProtocolError(
                "seed is not valid base64", reason="bad_field", field="seed"
            ) from None
        snapshot = DictionarySnapshot.from_bytes(blob)
        snapshot.require_config(config)
        return snapshot
