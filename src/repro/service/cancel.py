"""Cooperative cancellation for long-running requests.

A service with per-request deadlines needs more than rejecting late
work at the door: a compress request whose client gave up must stop
*mid-encode*, or slow requests pile up in the workers and the whole
pool wedges.  Python threads cannot be killed, so cancellation is
cooperative: the request carries a :class:`CancellationToken` and the
CPU-bound loops check it at bounded intervals.

Checkpoint sites:

* the encoder's symbol loop (every :data:`CHECK_INTERVAL` characters —
  cheap enough that the uncancelled path stays within the observability
  overhead budget);
* pipeline stage boundaries (between encode and the assign decode);
* the service's debug/sleep handlers and the drain path, which cancels
  every in-flight token when the grace period expires.

A tripped check raises a typed
:class:`~repro.reliability.errors.DeadlineError` carrying whether the
token *expired* (deadline) or was *cancelled* (drain, client gone).
The token is clock-injectable for deterministic tests.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..reliability.errors import DeadlineError

__all__ = ["CHECK_INTERVAL", "CancellationToken"]

#: Encoder symbol-loop characters between two token checks.  Power of
#: two so the loop can use a mask instead of a modulo.
CHECK_INTERVAL = 1024


class CancellationToken:
    """A deadline plus an explicit cancel flag, checked cooperatively.

    ``deadline`` is absolute on the injected monotonic ``clock``;
    ``None`` means no deadline (the token can still be cancelled).
    Thread-safe by construction: the flag is a single attribute write
    and the deadline is immutable.
    """

    __slots__ = ("_deadline", "_budget", "_cancelled", "_clock")

    def __init__(
        self,
        deadline: Optional[float] = None,
        budget: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._deadline = deadline
        self._budget = budget
        self._cancelled = False
        self._clock = clock

    @classmethod
    def after(
        cls, seconds: Optional[float], clock: Callable[[], float] = time.monotonic
    ) -> "CancellationToken":
        """A token expiring ``seconds`` from now (``None``: no deadline)."""
        deadline = None if seconds is None else clock() + seconds
        return cls(deadline=deadline, budget=seconds, clock=clock)

    def cancel(self) -> None:
        """Trip the token explicitly (drain, client disconnect)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` was called."""
        return self._cancelled

    @property
    def expired(self) -> bool:
        """True once the deadline (if any) has passed."""
        return self._deadline is not None and self._clock() >= self._deadline

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` if there is none).

        Clamped at 0.0 — an expired token never reports negative time.
        """
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    def check(self) -> None:
        """Raise :class:`DeadlineError` if cancelled or past deadline."""
        if self._cancelled:
            raise DeadlineError(
                "request cancelled", reason="cancelled", deadline_s=self._budget
            )
        if self._deadline is not None and self._clock() >= self._deadline:
            raise DeadlineError(
                "request deadline exceeded",
                reason="deadline",
                deadline_s=self._budget,
            )
