"""Admission control: the bounded queue and the per-client rate limiter.

The serving layer's first robustness rule is *shed, never hang*: when
the server cannot take more work it says so immediately with a typed
:class:`~repro.reliability.errors.OverloadError` (which the protocol
layer turns into a structured 429-style reply), instead of letting an
unbounded queue absorb requests until memory or every client's patience
runs out.

:class:`AdmissionQueue` is that bounded handoff between connection
threads (producers) and the worker pool (consumers).  Its capacity is
the server's entire buffering budget — ``submit`` on a full queue
raises, period.  On drain the queue closes: producers get a typed
``draining`` rejection, and everything still queued is *flushed back*
to the drain logic so each queued-but-unstarted request receives a shed
reply rather than silently vanishing with the process.

:class:`RateLimiter` is a classic token bucket per client identity
(remote IP for TCP, per-connection for unix sockets): ``rate`` tokens
per second refill up to a ``burst`` cap, one token per request.  Both
classes take an injectable clock so tests drive them deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, TypeVar

from ..reliability.errors import ConfigError, OverloadError

__all__ = ["AdmissionQueue", "RateLimiter"]

T = TypeVar("T")

#: Bucket-table size that triggers pruning of fully refilled buckets.
_PRUNE_THRESHOLD = 4096


class AdmissionQueue:
    """Bounded FIFO with explicit load shedding and a closable drain.

    ``submit`` never blocks: a full queue is an immediate typed
    :class:`OverloadError` (reason ``queue_full``), a closed queue one
    with reason ``draining``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(
                "queue capacity must be >= 1", field="queue_depth", value=capacity
            )
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    @property
    def depth(self) -> int:
        """Number of queued (not yet taken) items."""
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def submit(self, item: T) -> None:
        """Enqueue ``item`` or shed it with a typed error, never block."""
        with self._lock:
            if self._closed:
                raise OverloadError(
                    "server is draining, request shed",
                    reason="draining",
                    retry_after=1.0,
                )
            if len(self._items) >= self.capacity:
                raise OverloadError(
                    "admission queue full, request shed",
                    reason="queue_full",
                    depth=len(self._items),
                    capacity=self.capacity,
                    retry_after=0.1,
                )
            self._items.append(item)
            self._not_empty.notify()

    def take(self, timeout: Optional[float] = None) -> Optional[T]:
        """Dequeue one item, waiting up to ``timeout``.

        Returns ``None`` on timeout or when the queue is closed and
        empty — workers distinguish the two via :attr:`closed`.
        """
        with self._lock:
            if not self._items:
                if self._closed:
                    return None
                self._not_empty.wait(timeout)
            if not self._items:
                return None
            return self._items.popleft()

    def close(self) -> List[T]:
        """Stop accepting work; return everything still queued.

        The returned items are the queued-but-unstarted requests the
        drain path owes a typed shed reply to.  Waiting consumers are
        woken so they can observe the close.
        """
        with self._lock:
            self._closed = True
            pending = list(self._items)
            self._items.clear()
            self._not_empty.notify_all()
        return pending


class RateLimiter:
    """Token-bucket limiter keyed by client identity.

    ``rate`` is sustained requests/second, ``burst`` the bucket size
    (default: ``max(1, ceil(rate))``).  ``rate=None`` (or ``<= 0``)
    disables limiting entirely.  ``try_acquire`` is O(1) per call; the
    bucket table self-prunes once it grows past a few thousand idle
    clients.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate if rate and rate > 0 else None
        if self.rate is not None and burst is None:
            burst = max(1, int(self.rate + 0.999999))
        if burst is not None and burst < 1:
            raise ConfigError(
                "rate burst must be >= 1", field="rate_burst", value=burst
            )
        self.burst = burst
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, List[float]] = {}  # client -> [tokens, stamp]

    def try_acquire(self, client: str) -> bool:
        """Take one token for ``client``; False means rate-limited."""
        if self.rate is None:
            return True
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = [float(self.burst), now]
                self._buckets[client] = bucket
            tokens, stamp = bucket
            tokens = min(float(self.burst), tokens + (now - stamp) * self.rate)
            allowed = tokens >= 1.0
            if allowed:
                tokens -= 1.0
            bucket[0] = tokens
            bucket[1] = now
            if len(self._buckets) > _PRUNE_THRESHOLD:
                self._prune(now)
            return allowed

    def seconds_until_token(self, client: str) -> float:
        """How long ``client`` must wait before a token is available.

        Zero when limiting is disabled or a token is already there; the
        shed path attaches this as the reply's ``retry_after_ms`` hint.
        """
        if self.rate is None:
            return 0.0
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                return 0.0
            tokens, stamp = bucket
            tokens = min(float(self.burst), tokens + (now - stamp) * self.rate)
            if tokens >= 1.0:
                return 0.0
            return (1.0 - tokens) / self.rate

    def _prune(self, now: float) -> None:
        """Drop buckets that have refilled completely (idle clients)."""
        full = [
            client
            for client, (tokens, stamp) in self._buckets.items()
            if tokens + (now - stamp) * self.rate >= self.burst
        ]
        for client in full:
            del self._buckets[client]
