"""Wire protocol of the compression service.

One message — request or reply — is a newline-terminated JSON header
line followed by a binary payload of exactly ``payload_len`` bytes::

    {"op": "compress", "id": 7, "deadline_ms": 2000, "payload_len": 96}\\n
    <96 raw payload bytes>

Requests carry ``op`` (``compress`` / ``compress_stream`` /
``decompress`` / ``verify`` / ``ping`` / ``metrics``), an optional
client-chosen ``id`` (echoed back verbatim), an optional ``config``
object of LZW parameters and an optional ``deadline_ms``.  The payload
is the operation's input: cube text for ``compress``, raw bytes for
``compress_stream`` (encoded incrementally, ``chunk_bytes`` at a time,
with a cancellation checkpoint between chunks), container bytes for
``decompress``/``verify``.

Replies carry ``ok``, a numeric ``code`` (0 on success, HTTP-flavoured
on failure — see :func:`error_code`), the echoed ``id``, per-op result
fields, and on failure a structured ``error`` object with the typed
exception's class name, message and diagnostics.  *Every* failure mode
produces such a reply — shed, deadline, breaker, protocol violation —
never a silent close and never a hang.

Framing defends itself: header lines are capped at
:data:`MAX_HEADER_BYTES`, declared payloads at the server's configured
limit, and a message must complete within the server's I/O budget once
its first byte arrives (which is what turns a slow-loris client into a
typed 400 instead of a leaked connection).  Violations raise
:class:`~repro.reliability.errors.ProtocolError` with a ``reason`` the
reply map translates to a status code.

:class:`MessageStream` is the shared reader/writer (server connections
and :class:`ServiceClient` both use it); it owns the buffering, limits
and timeout bookkeeping but no sockets' lifecycle.
"""

from __future__ import annotations

import base64
import json
import socket
import time
from typing import Any, Callable, Dict, Optional, Tuple, Union

from ..reliability.errors import (
    ConfigError,
    ContainerError,
    DeadlineError,
    DecodeError,
    OverloadError,
    ProtocolError,
    ShardError,
    StreamError,
    TestFileError,
)

__all__ = [
    "MAX_HEADER_BYTES",
    "DEFAULT_MAX_PAYLOAD",
    "CODE_OK",
    "CODE_BAD_REQUEST",
    "CODE_DEADLINE",
    "CODE_PAYLOAD_TOO_LARGE",
    "CODE_UNPROCESSABLE",
    "CODE_SHED",
    "CODE_INTERNAL",
    "CODE_UNAVAILABLE",
    "MessageStream",
    "ServiceClient",
    "encode_message",
    "error_code",
    "error_from_reply",
    "error_reply",
    "ok_reply",
]

#: Upper bound on one JSON header line, newline included.
MAX_HEADER_BYTES = 64 * 1024
#: Default cap on a message's binary payload (servers may lower it).
DEFAULT_MAX_PAYLOAD = 16 * 1024 * 1024

#: Socket poll granularity while waiting for bytes, seconds.
_TICK = 0.1

# Reply status codes (HTTP-flavoured so operators can read them cold).
CODE_OK = 0
CODE_BAD_REQUEST = 400  # malformed header / unknown op / bad config
CODE_DEADLINE = 408  # deadline expired before or during the work
CODE_PAYLOAD_TOO_LARGE = 413  # declared payload over the server cap
CODE_UNPROCESSABLE = 422  # well-framed payload that fails to process
CODE_SHED = 429  # admission control: queue full / rate limited
CODE_INTERNAL = 500  # worker failed every recovery path
CODE_UNAVAILABLE = 503  # breaker open / server draining


def error_code(exc: BaseException) -> int:
    """Map a typed error to the reply status code clients switch on."""
    if isinstance(exc, OverloadError):
        reason = getattr(exc, "reason", None)
        if reason in ("breaker_open", "draining", "no_backends"):
            return CODE_UNAVAILABLE
        return CODE_SHED
    if isinstance(exc, DeadlineError):
        return CODE_DEADLINE
    if isinstance(exc, ProtocolError):
        if getattr(exc, "reason", None) == "oversized":
            return CODE_PAYLOAD_TOO_LARGE
        return CODE_BAD_REQUEST
    if isinstance(exc, ConfigError):
        return CODE_BAD_REQUEST
    if isinstance(exc, (TestFileError, ContainerError, DecodeError, StreamError)):
        return CODE_UNPROCESSABLE
    if isinstance(exc, ShardError):
        return CODE_INTERNAL
    return CODE_INTERNAL


def error_reply(request_id: Any, exc: BaseException) -> Dict[str, Any]:
    """The structured error header for a failed request."""
    error: Dict[str, Any] = {
        "type": type(exc).__name__,
        "message": getattr(exc, "message", str(exc)),
    }
    diagnostics = getattr(exc, "diagnostics", None)
    if diagnostics:
        # Diagnostics must survive JSON: stringify anything exotic.
        error["diagnostics"] = {
            key: value
            if isinstance(value, (str, int, float, bool, type(None)))
            else repr(value)
            for key, value in diagnostics.items()
        }
    header = {"id": request_id, "ok": False, "code": error_code(exc), "error": error}
    # Overload rejections carry an honest back-off hint when the server
    # knows one (breaker cooldown remainder, token-bucket refill time).
    retry_after = getattr(exc, "retry_after", None)
    if isinstance(retry_after, (int, float)) and retry_after >= 0:
        header["retry_after_ms"] = max(1, int(retry_after * 1000))
    return header


#: Reply ``error.type`` names the dispatcher can reconstruct as typed
#: exceptions when relaying a backend failure to its own client.
_ERROR_TYPES = {
    cls.__name__: cls
    for cls in (
        ConfigError,
        ContainerError,
        DeadlineError,
        DecodeError,
        OverloadError,
        ProtocolError,
        ShardError,
        StreamError,
        TestFileError,
    )
}


def error_from_reply(header: Dict[str, Any]) -> Exception:
    """Rebuild the typed exception an error reply describes.

    The inverse of :func:`error_reply`, as far as the wire allows: the
    class is looked up by name (unknown types degrade to
    :class:`ShardError`), and the diagnostics dict rides along so
    ``reason`` / ``retry_after_ms`` survive a relay hop intact.
    """
    error = header.get("error") or {}
    cls = _ERROR_TYPES.get(error.get("type"), ShardError)
    diagnostics = dict(error.get("diagnostics") or {})
    retry_after_ms = header.get("retry_after_ms")
    if isinstance(retry_after_ms, int) and "retry_after" not in diagnostics:
        diagnostics["retry_after"] = retry_after_ms / 1000.0
    message = error.get("message") or "backend reported an error"
    try:
        return cls(message, **diagnostics)
    except TypeError:  # diagnostics keys the constructor rejects
        return ShardError(message, **diagnostics)


def ok_reply(request_id: Any, **fields: Any) -> Dict[str, Any]:
    """The header of a successful reply."""
    header: Dict[str, Any] = {"id": request_id, "ok": True, "code": CODE_OK}
    header.update(fields)
    return header


def encode_message(header: Dict[str, Any], payload: bytes = b"") -> bytes:
    """Serialise one message; sets ``payload_len`` from ``payload``."""
    head = dict(header)
    head["payload_len"] = len(payload)
    line = json.dumps(head, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(line) + 1 > MAX_HEADER_BYTES:
        raise ProtocolError(
            "header too large to encode",
            reason="oversized",
            limit=MAX_HEADER_BYTES,
            actual=len(line) + 1,
        )
    return line + b"\n" + payload


class MessageStream:
    """Framed message I/O over one connected socket.

    ``io_timeout`` bounds how long a *single message* may take to
    arrive once its first byte is in (slow-loris defence); waiting for
    a new message to start is unbounded but interruptible through the
    ``stop`` callable, polled every ~100 ms.
    """

    def __init__(
        self,
        sock: socket.socket,
        max_header: int = MAX_HEADER_BYTES,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        io_timeout: Optional[float] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.sock = sock
        self.max_header = max_header
        self.max_payload = max_payload
        self.io_timeout = io_timeout
        self.stop = stop
        self._buffer = bytearray()
        self._eof = False
        sock.settimeout(_TICK)

    # -- receiving -----------------------------------------------------

    def _fill(self) -> bool:
        """Pull one chunk into the buffer; False on EOF/reset."""
        try:
            chunk = self.sock.recv(65536)
        except socket.timeout:
            return True
        except (ConnectionError, OSError):
            self._eof = True
            return False
        if not chunk:
            self._eof = True
            return False
        self._buffer.extend(chunk)
        return True

    def _deadline_expired(self, deadline: Optional[float]) -> bool:
        return deadline is not None and time.monotonic() >= deadline

    def recv_message(self) -> Optional[Tuple[Dict[str, Any], bytes]]:
        """Read one ``(header, payload)`` message.

        Returns ``None`` on a clean close (EOF with no partial message
        buffered, or mid-message disconnect — nothing can be replied to
        a gone client either way, so both are "connection over").
        Raises :class:`ProtocolError` for framing violations, with
        ``reason`` in ``bad_header`` / ``oversized`` / ``timeout``.
        """
        deadline: Optional[float] = None
        # Phase 1: the header line.
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                break
            if len(self._buffer) > self.max_header:
                raise ProtocolError(
                    "header line exceeds the limit",
                    reason="bad_header",
                    limit=self.max_header,
                    actual=len(self._buffer),
                )
            if self._eof or not self._fill():
                return None
            if self._buffer and deadline is None and self.io_timeout:
                deadline = time.monotonic() + self.io_timeout
            if self._deadline_expired(deadline):
                raise ProtocolError(
                    "client too slow: header incomplete within the I/O budget",
                    reason="timeout",
                    limit=self.io_timeout,
                )
            if self.stop is not None and self.stop():
                return None
        line = bytes(self._buffer[:newline])
        del self._buffer[: newline + 1]
        if len(line) + 1 > self.max_header:
            raise ProtocolError(
                "header line exceeds the limit",
                reason="bad_header",
                limit=self.max_header,
                actual=len(line) + 1,
            )
        try:
            header = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ProtocolError(
                "header is not a JSON object", reason="bad_header"
            ) from None
        if not isinstance(header, dict):
            raise ProtocolError("header is not a JSON object", reason="bad_header")
        payload_len = header.get("payload_len", 0)
        if not isinstance(payload_len, int) or payload_len < 0:
            raise ProtocolError(
                "payload_len must be a non-negative integer",
                reason="bad_header",
                field="payload_len",
            )
        if payload_len > self.max_payload:
            raise ProtocolError(
                "declared payload exceeds the limit",
                reason="oversized",
                limit=self.max_payload,
                actual=payload_len,
            )
        # Phase 2: the payload bytes, under the same message deadline.
        if deadline is None and self.io_timeout:
            deadline = time.monotonic() + self.io_timeout
        while len(self._buffer) < payload_len:
            if self._eof or not self._fill():
                return None  # disconnected mid-payload
            if self._deadline_expired(deadline):
                raise ProtocolError(
                    "client too slow: payload incomplete within the I/O budget",
                    reason="timeout",
                    limit=self.io_timeout,
                )
            if self.stop is not None and self.stop():
                return None
        payload = bytes(self._buffer[:payload_len])
        del self._buffer[:payload_len]
        return header, payload

    # -- sending -------------------------------------------------------

    def send_message(self, header: Dict[str, Any], payload: bytes = b"") -> None:
        """Write one message (callers serialise access per connection)."""
        self.sock.sendall(encode_message(header, payload))


#: Address forms accepted by :class:`ServiceClient` and the server:
#: ``("tcp", host, port)`` or ``("unix", path)``.
Address = Union[Tuple[str, str, int], Tuple[str, str]]


def parse_address(text: str) -> Address:
    """Parse ``host:port`` or ``unix:/path`` into an address tuple."""
    if text.startswith("unix:"):
        return ("unix", text[5:])
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ConfigError(
            "address must be HOST:PORT or unix:/path", field="address", value=text
        )
    return ("tcp", host, int(port))


def connect(address: Union[str, Address], timeout: float = 10.0) -> socket.socket:
    """Open a client socket to a server address tuple or string."""
    if isinstance(address, str):
        address = parse_address(address)
    if address[0] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address[1])
    else:
        sock = socket.create_connection((address[1], address[2]), timeout=timeout)
    return sock


class ServiceClient:
    """Small synchronous client for tests, tooling and the soak driver.

    ``auto_reconnect=True`` makes a broken connection self-healing: a
    send failure or a close-without-reply triggers one reconnect and one
    resend before the transport error surfaces — enough to ride out a
    backend restart without callers managing sockets.  ``reply_timeout``
    bounds the wait for a reply's *first byte* (the per-message
    ``io_timeout`` only starts counting once a reply begins arriving);
    when it trips, the socket is closed so a late reply can never be
    mis-paired with a later request, and a :class:`ProtocolError` with
    reason ``timeout`` is raised.

    ``retry_overloads=N`` opts in to honouring the server's 429/503
    ``retry_after_ms`` hint: the client sleeps the hinted back-off and
    resends, up to ``N`` times, before handing the overload reply back.
    """

    def __init__(
        self,
        address: Union[str, Address],
        timeout: float = 30.0,
        auto_reconnect: bool = False,
        reply_timeout: Optional[float] = None,
        retry_overloads: int = 0,
    ) -> None:
        self.address = address
        self.timeout = timeout
        self.auto_reconnect = auto_reconnect
        self.reply_timeout = reply_timeout
        self.retry_overloads = retry_overloads
        self._next_id = 0
        self._reply_deadline: Optional[float] = None
        self._connect()

    def _connect(self) -> None:
        self.sock = connect(self.address, timeout=self.timeout)
        self.stream = MessageStream(
            self.sock,
            max_payload=DEFAULT_MAX_PAYLOAD * 4,
            io_timeout=self.timeout,
            stop=self._reply_timed_out,
        )

    def _reply_timed_out(self) -> bool:
        return (
            self._reply_deadline is not None
            and time.monotonic() >= self._reply_deadline
        )

    def reconnect(self) -> None:
        """Drop the current connection and dial the server again."""
        self.close()
        self._connect()

    def _exchange(
        self, header: Dict[str, Any], payload: bytes
    ) -> Tuple[Dict[str, Any], bytes]:
        """One send/recv round trip; raises on any transport failure."""
        if self.reply_timeout is not None:
            self._reply_deadline = time.monotonic() + self.reply_timeout
        try:
            self.stream.send_message(header, payload)
            reply = self.stream.recv_message()
        finally:
            timed_out = self._reply_timed_out()
            self._reply_deadline = None
        if reply is None:
            if timed_out:
                # The connection now has an unread reply in flight;
                # poison it so a retry cannot pair replies wrongly.
                self.close()
                raise ProtocolError(
                    "no reply within the reply timeout",
                    reason="timeout",
                    limit=self.reply_timeout,
                )
            raise ProtocolError(
                "connection closed before a reply arrived", reason="closed"
            )
        return reply

    def request(
        self,
        op: str,
        payload: bytes = b"",
        config: Optional[Dict[str, Any]] = None,
        deadline_ms: Optional[int] = None,
        request_id: Optional[Any] = None,
        **fields: Any,
    ) -> Tuple[Dict[str, Any], bytes]:
        """Send one request and block for its reply.

        Raises :class:`ProtocolError` (reason ``closed``) if the server
        hung up without replying — which a conforming server only does
        after a framing violation by *this* client.
        """
        if request_id is None:
            self._next_id += 1
            request_id = self._next_id
        header: Dict[str, Any] = {"op": op, "id": request_id}
        if config is not None:
            header["config"] = config
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        header.update(fields)
        overload_budget = self.retry_overloads
        reconnect_budget = 1 if self.auto_reconnect else 0
        while True:
            try:
                reply = self._exchange(header, payload)
            except (ProtocolError, OSError) as exc:
                reason = getattr(exc, "reason", None)
                if reconnect_budget < 1 or reason == "timeout":
                    raise
                reconnect_budget -= 1
                self.reconnect()
                continue
            code = reply[0].get("code")
            retry_after_ms = reply[0].get("retry_after_ms")
            if (
                overload_budget > 0
                and code in (CODE_SHED, CODE_UNAVAILABLE)
                and isinstance(retry_after_ms, int)
            ):
                overload_budget -= 1
                time.sleep(min(retry_after_ms / 1000.0, 5.0))
                continue
            return reply

    # Convenience wrappers -------------------------------------------------

    def compress(
        self,
        text: Union[str, bytes],
        config: Optional[Dict[str, Any]] = None,
        deadline_ms: Optional[int] = None,
        seed: Optional[Union[str, bytes]] = None,
    ) -> Tuple[Dict[str, Any], bytes]:
        """Compress cube text; ``seed`` warm-starts the dictionary.

        ``seed`` is a serialized :class:`~repro.core.dictionary.
        DictionarySnapshot` — raw ``LZWS`` bytes (base64-encoded here)
        or an already-encoded base64 string.  The reply container is
        then a single-segment seeded (v4) file carrying the snapshot.
        """
        payload = text.encode("utf-8") if isinstance(text, str) else text
        fields: Dict[str, Any] = {}
        if seed is not None:
            if isinstance(seed, bytes):
                seed = base64.b64encode(seed).decode("ascii")
            fields["seed"] = seed
        return self.request(
            "compress", payload, config=config, deadline_ms=deadline_ms, **fields
        )

    def compress_stream(
        self,
        data: bytes,
        config: Optional[Dict[str, Any]] = None,
        deadline_ms: Optional[int] = None,
        chunk_bytes: Optional[int] = None,
        codes_per_frame: Optional[int] = None,
    ) -> Tuple[Dict[str, Any], bytes]:
        """Compress raw bytes into a v5 streaming frame journal.

        The worker feeds the payload to the incremental encoder
        ``chunk_bytes`` at a time with a cancellation checkpoint between
        chunks, so a ``deadline_ms`` that expires mid-stream replies 408
        at the next chunk boundary.  The reply payload is byte-identical
        to ``repro compress --stream`` on the same input and settings.
        """
        fields: Dict[str, Any] = {}
        if chunk_bytes is not None:
            fields["chunk_bytes"] = chunk_bytes
        if codes_per_frame is not None:
            fields["codes_per_frame"] = codes_per_frame
        return self.request(
            "compress_stream",
            data,
            config=config,
            deadline_ms=deadline_ms,
            **fields,
        )

    def decompress(self, container: bytes, **kw: Any) -> Tuple[Dict[str, Any], bytes]:
        return self.request("decompress", container, **kw)

    def verify(self, container: bytes, **kw: Any) -> Tuple[Dict[str, Any], bytes]:
        return self.request("verify", container, **kw)

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")[0]

    def metrics(self) -> Dict[str, Any]:
        header, _ = self.request("metrics")
        return header.get("metrics", {})

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def fileno(self) -> int:
        return self.sock.fileno()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

