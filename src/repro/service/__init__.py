"""Hardened long-running compression service (``repro serve``).

The service turns the library's compress/decompress/verify pipeline
into a concurrent network daemon with an explicit robustness envelope:

* :mod:`~repro.service.protocol` — NDJSON-header + framed-payload wire
  format, typed structured replies, defensive limits;
* :mod:`~repro.service.admission` — bounded queue with load shedding
  and a per-client token-bucket rate limiter;
* :mod:`~repro.service.breaker` — circuit breaker over the worker
  execution path (consecutive ShardErrors open it, a half-open probe
  closes it);
* :mod:`~repro.service.cancel` — cooperative deadline/cancellation
  token checked inside the encoder's symbol loop;
* :mod:`~repro.service.server` — the server tying those together, with
  graceful drain on SIGTERM.

Import layering: :mod:`repro.core` never imports this package (the
encoder takes the cancellation token duck-typed); this package sits on
top of core, container, parallel, reliability and observability.
"""

from .admission import AdmissionQueue, RateLimiter
from .breaker import CircuitBreaker
from .cancel import CHECK_INTERVAL, CancellationToken
from .protocol import (
    CODE_BAD_REQUEST,
    CODE_DEADLINE,
    CODE_INTERNAL,
    CODE_OK,
    CODE_PAYLOAD_TOO_LARGE,
    CODE_SHED,
    CODE_UNAVAILABLE,
    CODE_UNPROCESSABLE,
    DEFAULT_MAX_PAYLOAD,
    MAX_HEADER_BYTES,
    MessageStream,
    ServiceClient,
    connect,
    encode_message,
    error_code,
    error_from_reply,
    error_reply,
    ok_reply,
    parse_address,
)
from .server import FORCED_EXIT_CODE, CompressionServer, ServiceConfig

__all__ = [
    "AdmissionQueue",
    "CHECK_INTERVAL",
    "CODE_BAD_REQUEST",
    "CODE_DEADLINE",
    "CODE_INTERNAL",
    "CODE_OK",
    "CODE_PAYLOAD_TOO_LARGE",
    "CODE_SHED",
    "CODE_UNAVAILABLE",
    "CODE_UNPROCESSABLE",
    "CancellationToken",
    "CircuitBreaker",
    "CompressionServer",
    "DEFAULT_MAX_PAYLOAD",
    "FORCED_EXIT_CODE",
    "MAX_HEADER_BYTES",
    "MessageStream",
    "RateLimiter",
    "ServiceClient",
    "ServiceConfig",
    "connect",
    "encode_message",
    "error_code",
    "error_from_reply",
    "error_reply",
    "ok_reply",
    "parse_address",
]
