"""Command-line interface.

Subcommands::

    repro compress   FILE  [--char-bits N --dict-size N --entry-bits N ...]
    repro batch      FILE...  [--workers N --shard-bits B -o DIR
                     --seed-mode {cold,preamble,wave} --preamble-bits B
                     --max-retries N --shard-timeout S
                     --on-failure {fail,degrade,skip}
                     --checkpoint PATH --resume]
    repro decompress FILE.lzwt  -o OUT.test  [--width W]
    repro atpg       FILE.bench | --builtin c17 | --random N  [-o OUT]
    repro synth      BENCHMARK  [-o OUT --scale S]
    repro verify     FILE.lzwt  [--against FILE.test]
    repro fsck       PATH...  [--repair --scrub --json REPORT]  (deep
                     scan/repair of any artefact: containers v1-v5,
                     checkpoint journals, snapshot blobs, cache
                     entries, stale tmp files)
    repro stats      FILE  [--encode]  (structure, entropy bound, scan
                     power; with --encode an instrumented compression
                     pass with per-decision counters and stage spans)
    repro rtl        [-o DIR]  (generate the decompressor Verilog)
    repro table      NAME      [--scale S]
    repro serve      [--port N | --socket PATH]  [--workers N
                     --queue-depth N --rate-limit R --drain-grace S]
    repro fleet      [--backend ADDR ... | --spawn N]  [--cache-dir DIR
                     --failover-attempts N --hedge-after-ms MS]
    repro list       (workloads, tables, builtin circuits)

The CLI is a thin veneer over the library; every command prints what the
corresponding API returns.

``compress``, ``batch``, ``verify`` and ``stats`` accept
``--metrics-json PATH``: the run is instrumented with a
:mod:`repro.observability` recorder and its snapshot is written as the
versioned metrics envelope (``repro.metrics/1``).  Counters and
histograms in that file are deterministic functions of the inputs;
only the ``spans`` timings vary run to run.

Errors never surface as tracebacks: every typed
:class:`~repro.reliability.errors.ReproError` (and ``OSError``) is
reported as a one-line message on stderr with a documented exit code —
2 for usage/configuration errors, 3 for unreadable or malformed input,
4 for integrity failures (corrupt containers, undecodable streams),
5 for batch shards that failed every recovery path (see the README's
failure handling matrix).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional

from .analysis import entropy_lower_bound, power_report, testset_profile
from .atpg import generate_tests
from .baselines import GolombCompressor, LZ77Compressor
from .circuit import BUILTIN_CIRCUITS, TestSet, load_bench, load_builtin, random_circuit
from .bitstream import TernaryVector
from .container import dump_file, load_seeded
from .core import LZWConfig, compress, compress_batch, decode, decompress
from .experiments import ALL_TABLES, Lab
from .hardware import (
    MemoryRequirements,
    analyze_download,
    generate_decompressor,
    generate_testbench,
)
from .observability import (
    CompositeRecorder,
    CounterRecorder,
    SpanRecorder,
    metrics_snapshot,
    write_metrics_json,
)
from .parallel import RetryPolicy, SeedPlan
from .reliability import ConfigError, ReproError
from .reliability.atomic import atomic_write_bytes, atomic_write_text
from .reliability.verify import verify_container
from .testfile import read_test_file, write_test_file
from .workloads import available_workloads, build_testset

__all__ = ["main"]


def _add_lzw_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--char-bits", type=int, default=7, help="C_C (default 7)")
    parser.add_argument(
        "--dict-size", type=int, default=1024, help="N, total codes (default 1024)"
    )
    parser.add_argument(
        "--entry-bits", type=int, default=63, help="C_MDATA (default 63)"
    )
    parser.add_argument(
        "--policy",
        default="lookahead",
        choices=("first", "popular", "lookahead"),
        help="dynamic don't-care assignment heuristic",
    )
    parser.add_argument(
        "--lookahead", type=int, default=4, help="sliding-window depth W"
    )
    parser.add_argument(
        "--engine",
        default="auto",
        choices=("auto", "reference", "fast"),
        help="encoder implementation; both are byte-identical "
        "(auto resolves to fast)",
    )


def _metrics_recorder(args: argparse.Namespace) -> Optional[CompositeRecorder]:
    """A counter+span sink when ``--metrics-json`` was given, else None."""
    if getattr(args, "metrics_json", None):
        return CompositeRecorder([CounterRecorder(), SpanRecorder()])
    return None


def _emit_metrics(
    recorder: Optional[CompositeRecorder], args: argparse.Namespace
) -> None:
    """Write the recorder snapshot to the ``--metrics-json`` path."""
    if recorder is not None:
        write_metrics_json(recorder, args.metrics_json)
        print(f"wrote {args.metrics_json}")


@contextmanager
def _interruptible_metrics(recorder, args: argparse.Namespace):
    """Flush a *partial* ``--metrics-json`` snapshot on SIGINT/SIGTERM.

    A long compress/batch run killed mid-way still leaves a valid
    ``repro.metrics/1`` envelope on disk, marked ``"partial": true`` so
    consumers never mistake it for a complete run.  The signal is then
    re-delivered with the default disposition so the process exits with
    the conventional 128+signum status.  Handler installation fails
    (and is skipped) off the main thread — tests that call commands
    from threads run unguarded, which is the pre-existing behaviour.
    """
    if recorder is None or not getattr(args, "metrics_json", None):
        yield
        return

    def _on_signal(signum, frame):
        write_metrics_json(recorder, args.metrics_json, partial=True)
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _on_signal)
        except (ValueError, OSError):  # non-main thread
            pass
    try:
        yield
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass


def _config_from(args: argparse.Namespace) -> LZWConfig:
    return LZWConfig(
        char_bits=args.char_bits,
        dict_size=args.dict_size,
        entry_bits=args.entry_bits,
        policy=args.policy,
        lookahead=args.lookahead,
        engine=getattr(args, "engine", "auto"),
    )


def _open_source(spec: str):
    """A binary read handle for a path, or stdin for ``-``."""
    if spec == "-":
        return sys.stdin.buffer, False
    return open(spec, "rb"), True


def _cmd_compress_stream(args: argparse.Namespace) -> int:
    """``repro compress --stream``: raw bytes in, v5 frame journal out.

    The input (a file or stdin) is read ``--chunk-bytes`` at a time and
    mapped to an X-density-0 ternary stream (bit *i* of the stream is
    bit *i* of the little-endian byte string), so peak memory stays
    bounded by the chunk size plus the dictionary no matter how large
    the input grows.  Output to a path goes through the durable
    append-only writer (fsync per frame); ``-o -`` streams frames to
    stdout for piping into ``repro decompress --stream -``.
    """
    from .reliability.atomic import DurableAppendFile
    from .streamio import StreamContainerWriter
    from .core.stream import StreamEncoder
    from .observability import schema as ev

    if not args.output:
        raise ConfigError(
            "--stream requires -o/--output (a path, or '-' for stdout)",
            field="output",
        )
    if args.chunk_bytes < 1:
        raise ConfigError(
            "--chunk-bytes must be >= 1", field="chunk_bytes",
            value=args.chunk_bytes,
        )
    config = _config_from(args)
    recorder = _metrics_recorder(args)
    # Frames on stdout would interleave with the report; send it to
    # stderr so `repro compress --stream - -o - | ...` stays clean.
    report = sys.stderr if args.output == "-" else sys.stdout
    source, close_source = _open_source(args.file)
    sink = None
    try:
        if args.output == "-":
            sink = sys.stdout.buffer
        else:
            sink = DurableAppendFile(Path(args.output))
        encoder = StreamEncoder(config, recorder=recorder)
        writer = StreamContainerWriter(
            config, sink, codes_per_frame=args.codes_per_frame,
            recorder=recorder,
        )
        total_in = 0
        with _interruptible_metrics(recorder, args):
            while True:
                buf = source.read(args.chunk_bytes)
                if not buf:
                    break
                total_in += len(buf)
                chunk = TernaryVector.from_int(
                    int.from_bytes(buf, "little"), len(buf) * 8
                )
                writer.write_codes(encoder.feed(chunk))
                if recorder is not None and recorder.enabled:
                    recorder.incr(ev.STREAM_CHUNKS_FED)
            writer.finalize(encoder.finalize(), encoder.original_bits)
    finally:
        if close_source:
            source.close()
        if isinstance(sink, DurableAppendFile):
            sink.close()
    ratio = (
        100.0 * (1.0 - writer.bytes_written / total_in) if total_in else 0.0
    )
    print(f"config: {config.describe()}", file=report)
    print(
        f"streamed {total_in} bytes -> {writer.bytes_written} bytes "
        f"in {writer.frames_written} frame(s) "
        f"(ratio {ratio:.2f}%, chunk {args.chunk_bytes} bytes)",
        file=report,
    )
    if args.output != "-":
        print(f"wrote {args.output}", file=report)
    _emit_metrics(recorder, args)
    return 0


def _cmd_decompress_stream(args: argparse.Namespace, source, close_source) -> int:
    """Frame-by-frame expansion of a v5 journal back to raw bytes.

    The inverse of ``compress --stream``: each verified frame's
    characters are packed back into little-endian bytes as they decode,
    so only one frame (plus the dictionary) is ever resident.
    """
    from .streamio import StreamContainerReader, iter_decode_stream

    if args.width:
        raise ConfigError(
            "--width applies to cube containers; a v5 stream holds raw "
            "bytes (drop --width)",
            field="width",
        )
    recorder = _metrics_recorder(args)
    report = sys.stderr if args.output == "-" else sys.stdout
    out = None
    close_out = False
    try:
        if args.output == "-":
            out = sys.stdout.buffer
        else:
            out = open(args.output, "wb")
            close_out = True
        reader = StreamContainerReader(source, recorder=recorder)
        char_bits = reader.config.char_bits
        acc = 0
        acc_bits = 0
        emitted_bits = 0
        frames = 0
        num_codes = 0
        for chars, frame in iter_decode_stream(reader, recorder=recorder):
            for char in chars:
                acc |= char << acc_bits
                acc_bits += char_bits
            frames += 1
            num_codes += frame.num_codes
            # Never emit past the attested cumulative bit count — the
            # final frame's X-padded partial character stays buffered.
            avail = min(acc_bits, frame.original_bits_cum - emitted_bits)
            nbytes = avail // 8
            if nbytes:
                out.write(
                    (acc & ((1 << (nbytes * 8)) - 1)).to_bytes(nbytes, "little")
                )
                acc >>= nbytes * 8
                acc_bits -= nbytes * 8
                emitted_bits += nbytes * 8
        total_bits = reader.terminal.total_original_bits
        tail_bits = total_bits - emitted_bits
        if tail_bits > 0:
            acc &= (1 << tail_bits) - 1
            out.write(acc.to_bytes((tail_bits + 7) // 8, "little"))
        if out is not sys.stdout.buffer:
            out.flush()
    finally:
        if close_source:
            source.close()
        if close_out and out is not None:
            out.close()
    print(
        f"decoded {total_bits} bits from {num_codes} codes in "
        f"{frames} frame(s) ({reader.config.describe()})",
        file=report,
    )
    if total_bits % 8:
        print(
            f"note: {total_bits} bits is not a whole number of bytes; "
            "the last byte is zero-padded",
            file=report,
        )
    if args.output != "-":
        print(f"wrote {args.output}", file=report)
    _emit_metrics(recorder, args)
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    if args.stream:
        return _cmd_compress_stream(args)
    test_set = read_test_file(args.file)
    print(test_set.summary())
    stream = test_set.to_stream()
    config = _config_from(args)
    recorder = _metrics_recorder(args)
    with _interruptible_metrics(recorder, args):
        result = compress(stream, config, recorder=recorder)
    print(f"config: {config.describe()}")
    print(
        f"compressed: {result.compressed_bits} bits "
        f"({result.compressed.num_codes} codes of {config.code_bits} bits)"
    )
    print(f"compression ratio: {result.ratio_percent:.2f}%")
    print(f"dictionary entries used: {result.stats.entries_allocated}")
    print(f"longest dictionary string: {result.longest_entry_bits} bits")
    print(f"memory requirement: {MemoryRequirements.for_config(config).geometry}")
    for k in args.clock_ratio:
        report = analyze_download(result.compressed, k)
        print(f"download improvement at {k}x clock: {report.improvement_percent:.2f}%")
    if args.compare:
        for comp in (LZ77Compressor(), GolombCompressor()):
            r = comp.compress(stream)
            print(f"baseline {r.scheme}: {r.ratio_percent:.2f}%")
    if not result.verify(stream):
        _emit_metrics(recorder, args)
        print("ERROR: decoded stream does not cover the original cubes")
        return 1
    if args.output:
        dump_file(result.compressed, args.output, result.assigned_stream,
                  recorder=recorder)
        print(f"wrote {args.output}")
    _emit_metrics(recorder, args)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    config = _config_from(args)
    if args.resume and not args.checkpoint:
        raise ConfigError(
            "--resume requires --checkpoint PATH", field="resume"
        )
    names, streams, originals, widths = [], [], [], []
    for file in args.files:
        test_set = read_test_file(file)
        names.append(Path(file).stem)
        originals.append(test_set)
        streams.append(test_set.to_stream())
        widths.append(test_set.width)
    recorder = _metrics_recorder(args)
    started = time.perf_counter()
    with _interruptible_metrics(recorder, args):
        results = compress_batch(
            config,
            streams,
            workers=args.workers,
            shard_bits=args.shard_bits,
            pattern_bits=widths,
            recorder=recorder,
            retry_policy=RetryPolicy(max_attempts=args.max_retries + 1),
            shard_timeout=args.shard_timeout,
            on_failure=args.on_failure,
            checkpoint=args.checkpoint,
            resume=args.resume,
            seed_plan=SeedPlan(
                mode=args.seed_mode, preamble_bits=args.preamble_bits
            ),
        )
    elapsed = time.perf_counter() - started
    # Emit before per-workload verification so a coverage failure still
    # leaves the instrumented evidence on disk.
    _emit_metrics(recorder, args)
    print(f"config: {config.describe()}")
    out_dir = Path(args.output_dir) if args.output_dir else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    rows = []
    exit_code = 0
    for name, stream, item in zip(names, streams, results):
        if not item.ok:
            # on_failure="skip" surfaced typed shard errors instead of a
            # container; report them all and keep going — the batch exit
            # code says "degraded", per-workload lines say where.
            for error in item.errors:
                print(
                    f"ERROR: {name}: {type(error).__name__}: {error}",
                    file=sys.stderr,
                )
            print(f"{name}: FAILED ({len(item.errors)} shard(s) skipped)")
            rows.append({"name": name, "failed_shards": len(item.errors)})
            exit_code = 5
            continue
        if not item.verify(stream):
            print(f"ERROR: {name}: decoded stream does not cover the original cubes")
            return 1
        print(
            f"{name}: {item.original_bits} -> {item.compressed_bits} bits "
            f"({item.ratio_percent:.2f}%) in {item.num_shards} segment(s)"
        )
        row = {
            "name": name,
            "segments": item.num_shards,
            "original_bits": item.original_bits,
            "compressed_bits": item.compressed_bits,
            "ratio_percent": round(item.ratio_percent, 4),
        }
        if out_dir is not None:
            path = out_dir / f"{name}.lzwt"
            atomic_write_bytes(path, item.container)
            row["container"] = str(path)
            print(f"  wrote {path}")
        rows.append(row)
    ok_items = [item for item in results if item.ok]
    total_bits = sum(item.original_bits for item in ok_items)
    total_compressed = sum(item.compressed_bits for item in ok_items)
    ratio = 100.0 * (1.0 - total_compressed / total_bits) if total_bits else 0.0
    mb_per_s = total_bits / 8 / 1e6 / elapsed if elapsed else 0.0
    failed = len(results) - len(ok_items)
    suffix = f", {failed} FAILED" if failed else ""
    print(
        f"batch: {len(results)} workload(s), {total_bits} bits, "
        f"ratio {ratio:.2f}%, {elapsed:.2f}s ({mb_per_s:.3f} MB/s, "
        f"workers={args.workers or 'auto'}{suffix})"
    )
    if args.json:
        summary = {
            "config": config.describe(),
            "workers": args.workers,
            "shard_bits": args.shard_bits,
            "seed_mode": args.seed_mode,
            "seconds": round(elapsed, 6),
            "mb_per_s": round(mb_per_s, 6),
            "ratio_percent": round(ratio, 4),
            "failed_workloads": failed,
            "workloads": rows,
        }
        atomic_write_text(Path(args.json), json.dumps(summary, indent=2) + "\n")
        print(f"wrote {args.json}")
    return exit_code


def _cmd_decompress(args: argparse.Namespace) -> int:
    from .streamio import VERSION_STREAM

    if args.file == "-":
        # Only the framed v5 journal can arrive on stdin; the reader
        # validates the magic/version itself.
        return _cmd_decompress_stream(args, sys.stdin.buffer, False)
    source = open(args.file, "rb")
    head = source.read(5)
    source.seek(0)
    if len(head) == 5 and head[:4] == b"LZWT" and head[4] == VERSION_STREAM:
        return _cmd_decompress_stream(args, source, True)
    source.close()
    data = Path(args.file).read_bytes()
    segments = load_seeded(data)
    stream = TernaryVector.concat_all(
        [
            decode(seg.compressed, seed=seg.seed, link=seg.link)
            for seg in segments
        ]
    )
    config = segments[0].compressed.config
    num_codes = sum(seg.compressed.num_codes for seg in segments)
    warm = sum(1 for seg in segments if seg.seed is not None or seg.link is not None)
    suffix = f" in {len(segments)} segments" if len(segments) > 1 else ""
    if warm:
        suffix += f" ({warm} warm-seeded)"
    print(
        f"decoded {len(stream)} bits from {num_codes} codes{suffix} "
        f"({config.describe()})"
    )
    if args.width:
        if len(stream) % args.width:
            print(f"ERROR: {len(stream)} bits is not a multiple of {args.width}")
            return 1
        names = [f"sc{i}" for i in range(args.width)]
        test_set = TestSet.from_stream(stream, names, name=Path(args.file).stem)
        write_test_file(test_set, args.output)
    else:
        atomic_write_text(Path(args.output), str(stream) + "\n")
    print(f"wrote {args.output}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    data = Path(args.file).read_bytes()
    original = read_test_file(args.against).to_stream() if args.against else None
    recorder = _metrics_recorder(args)
    report = verify_container(data, original, recorder=recorder)
    print(f"{args.file}: {len(data)} bytes")
    print(report.describe())
    _emit_metrics(recorder, args)
    return report.exit_code


def _cmd_fsck(args: argparse.Namespace) -> int:
    """``repro fsck``: unified deep scan/repair over on-disk artefacts.

    Exit codes mirror ``repro verify``: 0 everything clean (or
    repaired), 3 only unrecognised/unreadable paths, 4 integrity
    faults remain (unrepaired, or repair refused).
    """
    from .reliability.fsck import fsck_paths

    recorder = CounterRecorder()
    report = fsck_paths(
        args.paths, repair=args.repair, scrub=args.scrub, recorder=recorder
    )
    print(report.describe())
    if args.json:
        payload = report.to_json()
        payload["metrics"] = metrics_snapshot(recorder)
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2)
            print()
        else:
            atomic_write_text(args.json, json.dumps(payload, indent=2) + "\n")
    return report.exit_code


def _cmd_stats_raw(args: argparse.Namespace) -> int:
    """``repro stats --raw``: the X-density-0 degenerate mode.

    Treats the input as opaque bytes (every bit a care bit — zero
    don't-cares, so the X-aware machinery degenerates to classical
    LZW), round-trips it through the streaming codec, and reports the
    v5 container ratio next to ``zlib`` and ``lzma`` on the same
    corpus.  The round-trip is verified byte for byte before any
    number is printed.
    """
    import io as _io
    import lzma
    import zlib as _zlib

    from .core.stream import StreamEncoder
    from .streamio import decode_stream_bytes, StreamContainerWriter

    source, close_source = _open_source(args.file)
    try:
        data = source.read()
    finally:
        if close_source:
            source.close()
    config = _config_from(args)
    encoder = StreamEncoder(config)
    sink = _io.BytesIO()
    writer = StreamContainerWriter(config, sink)
    for start in range(0, len(data), args.chunk_bytes):
        buf = data[start : start + args.chunk_bytes]
        writer.write_codes(
            encoder.feed(
                TernaryVector.from_int(
                    int.from_bytes(buf, "little"), len(buf) * 8
                )
            )
        )
    writer.finalize(encoder.finalize(), encoder.original_bits)
    container = sink.getvalue()
    decoded = decode_stream_bytes(container)
    nbytes = len(decoded) // 8
    if decoded.value_mask.to_bytes(nbytes, "little") != data:
        print("ERROR: streaming round-trip diverged from the input")
        return 1
    print(f"raw corpus: {len(data)} bytes (X-density 0: every bit a care bit)")
    print(f"config: {config.describe()}")

    def _row(name: str, size: int) -> None:
        ratio = 100.0 * (1.0 - size / len(data)) if data else 0.0
        print(f"  {name:<18} {size:>10} bytes  ({ratio:+7.2f}%)")

    print("compressed size vs general-purpose baselines:")
    _row("lzw-stream (v5)", len(container))
    _row("zlib -9", len(_zlib.compress(data, 9)))
    _row("lzma", len(lzma.compress(data)))
    print(
        "(v5 includes per-frame integrity headers; "
        f"{writer.frames_written} frame(s) of {writer.codes_per_frame} codes)"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.raw:
        return _cmd_stats_raw(args)
    test_set = read_test_file(args.file)
    profile = testset_profile(test_set)
    print(test_set.summary())
    print(f"care bits: {profile.care_bits} "
          f"({profile.ones_percent_of_care:.1f}% ones)")
    print(f"care adjacency: {profile.care_adjacency:.2f} "
          f"(1.0 = fully clustered)")
    print(f"hottest cells: {' '.join(profile.hottest_cells[:5])}")
    bound = entropy_lower_bound(test_set)
    print(f"order-0 entropy bound (zero-fill, 8-bit blocks): "
          f"{bound:.0f} bits "
          f"({100 * (1 - bound / profile.total_bits):.1f}% ratio ceiling)")
    report = power_report(test_set)
    for name in ("repeat", "zero", "one"):
        print(f"scan-shift WTM with {name}-fill: {report.wtm[name]}")
    if args.encode or args.metrics_json:
        config = _config_from(args)
        recorder = CompositeRecorder([CounterRecorder(), SpanRecorder()])
        result = compress(test_set.to_stream(), config, recorder=recorder)
        snap = metrics_snapshot(recorder)
        print(f"instrumented encode with {config.describe()}: "
              f"{result.ratio_percent:.2f}% ratio")
        print("counters:")
        for name, value in snap["counters"].items():
            print(f"  {name}: {value}")
        for name, bins in snap["histograms"].items():
            total = sum(bins.values())
            weighted = sum(int(v) * c for v, c in bins.items())
            mean = weighted / total if total else 0.0
            values = [int(v) for v in bins]
            print(f"histogram {name}: n={total} mean={mean:.2f} "
                  f"min={min(values)} max={max(values)}")
        print("spans:")
        for entry in snap["spans"]:
            print(f"  {entry['name']}: {entry['seconds'] * 1e3:.2f} ms")
        if args.metrics_json:
            write_metrics_json(recorder, args.metrics_json)
            print(f"wrote {args.metrics_json}")
    return 0


def _cmd_rtl(args: argparse.Namespace) -> int:
    config = _config_from(args)
    out_dir = Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    rtl_path = out_dir / "lzw_decompressor.v"
    rtl_path.write_text(generate_decompressor(config))
    print(f"wrote {rtl_path} ({config.describe()})")
    if args.testbench:
        test_set = read_test_file(args.testbench)
        result = compress(test_set.to_stream(), config)
        tb_path = out_dir / "tb_lzw_decompressor.v"
        tb_path.write_text(
            generate_testbench(result.compressed, clock_ratio=args.clock_ratio)
        )
        print(f"wrote {tb_path} (self-checking, {result.compressed.num_codes} codes)")
    return 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    if args.builtin:
        circuit = load_builtin(args.builtin)
    elif args.random:
        circuit = random_circuit(
            "random", n_inputs=16, n_flops=24, n_gates=args.random, seed=args.seed
        )
    elif args.file:
        circuit = load_bench(args.file)
    else:
        print("atpg: give FILE.bench, --builtin NAME or --random GATES")
        return 2
    print(circuit)
    result = generate_tests(circuit)
    print(
        f"coverage {result.coverage_percent:.1f}% "
        f"({result.detected}/{result.total_faults} faults, "
        f"{result.untestable} untestable, {result.aborted} aborted)"
    )
    print(result.test_set.summary())
    if args.output:
        write_test_file(result.test_set, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    test_set = build_testset(args.benchmark, scale=args.scale)
    print(test_set.summary())
    if args.output:
        write_test_file(test_set, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    runner = ALL_TABLES.get(args.name)
    if runner is None:
        print(f"unknown table {args.name!r}; known: {', '.join(sorted(ALL_TABLES))}")
        return 2
    lab = Lab(scale=args.scale)
    print(runner(lab).render())
    return 0


def _serve_until_drained(server, banner: str, metrics_json: Optional[str]) -> int:
    """Shared serve/fleet run loop: signals, banner, drain, exit code.

    First SIGTERM/SIGINT triggers the graceful drain; a second one
    forces an immediate exit with the documented status.
    """
    from .service import FORCED_EXIT_CODE

    signals_seen = {"count": 0}

    def _on_signal(signum, frame):
        signals_seen["count"] += 1
        if signals_seen["count"] > 1:
            # Second SIGTERM/SIGINT: the operator means *now*.  Skip the
            # drain and die loudly with a distinct status.
            os._exit(FORCED_EXIT_CODE)
        server.request_drain()

    # Handlers go in *before* the banner: once the address is printed a
    # supervisor may signal us at any moment, and the default disposition
    # would skip the drain entirely.
    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _on_signal)
        except (ValueError, OSError):  # non-main thread (in-process tests)
            pass
    try:
        server.start()
        print(f"serving on {server.address_str} {banner}", flush=True)
        code = server.serve_forever()
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
    if metrics_json:
        print(f"wrote {metrics_json}")
    print("drained, exiting")
    return code


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import CompressionServer, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_payload=args.max_payload,
        io_timeout=args.io_timeout,
        default_deadline=args.default_deadline,
        max_deadline=args.max_deadline,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        retry_attempts=args.max_retries + 1,
        drain_grace=args.drain_grace,
        metrics_json=args.metrics_json,
        debug_ops=args.debug_ops,
    )
    server = CompressionServer(config)
    banner = f"({config.workers} workers, queue depth {config.queue_depth})"
    return _serve_until_drained(server, banner, args.metrics_json)


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .fleet import FleetConfig, FleetDispatcher, spawn_backend, stop_backend

    spawned = []
    backends = list(args.backend or ())
    try:
        if args.spawn:
            spawn_args = ["--workers", str(args.backend_workers)]
            if args.debug_ops:
                spawn_args.append("--debug-ops")
            for _ in range(args.spawn):
                child = spawn_backend(spawn_args)
                spawned.append(child)
                backends.append(child.address)
                print(f"spawned backend {child.address} (pid {child.pid})")
        config = FleetConfig(
            host=args.host,
            port=args.port,
            socket_path=args.socket,
            workers=args.workers,
            queue_depth=args.queue_depth,
            max_payload=args.max_payload,
            io_timeout=args.io_timeout,
            default_deadline=args.default_deadline,
            max_deadline=args.max_deadline,
            rate_limit=args.rate_limit,
            rate_burst=args.rate_burst,
            drain_grace=args.drain_grace,
            metrics_json=args.metrics_json,
            debug_ops=args.debug_ops,
            backends=tuple(backends),
            probe_interval=args.probe_interval,
            probe_timeout=args.probe_timeout,
            backend_timeout=args.backend_timeout,
            failover_attempts=args.failover_attempts,
            hedge_after_ms=args.hedge_after_ms,
            cache_dir=args.cache_dir,
            cache_entries=args.cache_entries,
        )
        dispatcher = FleetDispatcher(config)
        banner = (
            f"({len(backends)} backends, {config.workers} relay workers, "
            f"cache {'at ' + config.cache_dir if config.cache_dir else 'off'})"
        )
        return _serve_until_drained(dispatcher, banner, args.metrics_json)
    finally:
        for child in spawned:
            code = stop_backend(child)
            if code not in (0, None):
                print(
                    f"backend {child.address} exited {code} on drain",
                    file=sys.stderr,
                )


def _cmd_list(args: argparse.Namespace) -> int:
    del args
    print("workloads: " + " ".join(available_workloads()))
    print("tables:    " + " ".join(sorted(ALL_TABLES)))
    print("builtin circuits: " + " ".join(BUILTIN_CIRCUITS))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Don't-care-aware LZW scan test compression (DATE 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="compress a test-vector file")
    p.add_argument(
        "file",
        help="vector file (one 01X cube per line); with --stream, raw "
        "bytes (or '-' for stdin)",
    )
    _add_lzw_options(p)
    p.add_argument(
        "--stream",
        action="store_true",
        help="bounded-memory mode: read FILE (or stdin) as raw bytes in "
        "--chunk-bytes pieces and append a crash-safe v5 frame journal "
        "to -o (or stdout); peak memory is flat no matter the input size",
    )
    p.add_argument(
        "--chunk-bytes",
        type=int,
        default=1 << 16,
        help="streaming read granularity in bytes (default 65536)",
    )
    p.add_argument(
        "--codes-per-frame",
        type=int,
        default=4096,
        help="codes per durable v5 frame; smaller frames bound crash "
        "loss tighter at more fsync cost (default 4096)",
    )
    p.add_argument(
        "--clock-ratio",
        type=int,
        nargs="*",
        default=[10],
        help="decompressor clock ratios to report (default: 10)",
    )
    p.add_argument(
        "--compare", action="store_true", help="also run the LZ77/RLE baselines"
    )
    p.add_argument("-o", "--output", help="write a .lzwt container here")
    p.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="record counters/histograms/spans and write the "
        "repro.metrics/1 envelope here",
    )
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser(
        "batch",
        help="compress many vector files in parallel (multi-segment containers)",
    )
    p.add_argument("files", nargs="+", help="vector files (one 01X cube per line)")
    _add_lzw_options(p)
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: all cores; output is identical "
        "for any value)",
    )
    p.add_argument(
        "--seed-mode",
        choices=("cold", "preamble", "wave"),
        default="cold",
        help="shard dictionary seeding: 'cold' starts every shard "
        "empty, 'preamble' trains a shared snapshot on each workload's "
        "leading bits, 'wave' chains each shard from its predecessor's "
        "final dictionary (serial ratio at pipelined speedup)",
    )
    p.add_argument(
        "--preamble-bits",
        type=int,
        default=0,
        help="training-prefix length for --seed-mode preamble "
        "(default 0: one shard's worth)",
    )
    p.add_argument(
        "--shard-bits",
        type=int,
        default=0,
        help="target shard size in bits, aligned to pattern boundaries "
        "(default 0: one segment per file)",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="re-attempts per failed/hung/crashed shard before the "
        "--on-failure policy applies (default 2)",
    )
    p.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard attempt timeout; a slower shard counts as hung "
        "and is retried (default: no timeout)",
    )
    p.add_argument(
        "--on-failure",
        choices=("fail", "degrade", "skip"),
        default="fail",
        help="shard exhausted its retries: 'fail' aborts the batch "
        "(exit 5), 'degrade' re-runs it inline without a timeout, "
        "'skip' drops the workload's container and exits 5 after "
        "finishing the rest (default fail)",
    )
    p.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="append completed shards to this journal so an interrupted "
        "batch can be resumed",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="replay completed shards from the --checkpoint journal "
        "(must match this batch's inputs; output bytes are identical "
        "to an uninterrupted run)",
    )
    p.add_argument(
        "-o",
        "--output-dir",
        help="write one .lzwt container per input file here",
    )
    p.add_argument("--json", help="write a machine-readable batch summary here")
    p.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="record merged per-shard counters/histograms/spans and write "
        "the repro.metrics/1 envelope here (counters identical for any "
        "--workers value)",
    )
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser("decompress", help="expand a .lzwt container")
    p.add_argument(
        "file",
        help="container written by `repro compress -o` ('-' reads a v5 "
        "stream from stdin); v5 journals are expanded frame by frame",
    )
    p.add_argument(
        "-o", "--output", required=True,
        help="output file ('-' streams raw bytes to stdout for v5 input)",
    )
    p.add_argument(
        "--width",
        type=int,
        default=0,
        help="vector width: write a cube file instead of one bit string",
    )
    p.set_defaults(func=_cmd_decompress)

    p = sub.add_parser(
        "verify",
        help="check a .lzwt container's integrity (exit 0 ok / 3 not a "
        "container / 4 integrity failure)",
    )
    p.add_argument("file", help="container written by `repro compress -o`")
    p.add_argument(
        "--against",
        metavar="VECTORS",
        help="also check the decoded stream covers this cube file",
    )
    p.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="record verification-stage spans and decode counters and "
        "write the repro.metrics/1 envelope here",
    )
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "fsck",
        help="deep-scan (and with --repair fix) any on-disk artefact: "
        "containers v1-v5, checkpoint journals, snapshot blobs, fleet "
        "cache entries, stale *.tmp.* files (exit 0 clean or repaired / "
        "3 unrecognised paths only / 4 faults remain)",
    )
    p.add_argument(
        "paths",
        nargs="+",
        help="files or directories to scan (directories are walked "
        "recursively)",
    )
    p.add_argument(
        "--repair",
        action="store_true",
        help="rewrite salvageable artefacts atomically (original kept "
        "as <name>.quarantine), quarantine corrupt cache entries and "
        "sweep stale tmp files; clean artefacts are never touched",
    )
    p.add_argument(
        "--scrub",
        action="store_true",
        help="treat directories as fleet result-cache roots and sweep "
        "every entry through the read-side verifier (the background-"
        "scrubber entry point; with --repair corrupt entries are "
        "quarantined)",
    )
    p.add_argument(
        "--json",
        metavar="PATH",
        help="write the repro.fsck/1 report here ('-' for stdout)",
    )
    p.set_defaults(func=_cmd_fsck)

    p = sub.add_parser("stats", help="analyse a test-vector file")
    p.add_argument(
        "file",
        help="vector file (one 01X cube per line); with --raw, any "
        "bytes (or '-' for stdin)",
    )
    _add_lzw_options(p)
    p.add_argument(
        "--raw",
        action="store_true",
        help="X-density-0 degenerate mode: treat FILE as opaque bytes, "
        "round-trip it through the streaming codec and report the v5 "
        "ratio against zlib/lzma",
    )
    p.add_argument(
        "--chunk-bytes",
        type=int,
        default=1 << 16,
        help="streaming feed granularity for --raw (default 65536)",
    )
    p.add_argument(
        "--encode",
        action="store_true",
        help="also run an instrumented compression pass and print its "
        "counters, histogram summaries and stage spans",
    )
    p.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="write the instrumented pass's repro.metrics/1 envelope "
        "here (implies --encode)",
    )
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("rtl", help="generate decompressor Verilog")
    _add_lzw_options(p)
    p.add_argument("-o", "--output", default="rtl", help="output directory")
    p.add_argument(
        "--testbench",
        metavar="VECTORS",
        help="also emit a self-checking bench for this vector file",
    )
    p.add_argument("--clock-ratio", type=int, default=4)
    p.set_defaults(func=_cmd_rtl)

    p = sub.add_parser("atpg", help="run ATPG on a .bench circuit")
    p.add_argument("file", nargs="?", help=".bench netlist")
    p.add_argument("--builtin", choices=BUILTIN_CIRCUITS, help="shipped netlist")
    p.add_argument("--random", type=int, metavar="GATES", help="random circuit")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", help="write the cube file here")
    p.set_defaults(func=_cmd_atpg)

    p = sub.add_parser("synth", help="synthesize a paper-matched test set")
    p.add_argument("benchmark", help="benchmark name (see `repro list`)")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("-o", "--output", help="write the cube file here")
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("name", help="table1..table6 or an ablation (see `repro list`)")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=_cmd_table)

    p = sub.add_parser(
        "serve",
        help="run the hardened compression service (NDJSON over TCP or a "
        "unix socket; SIGTERM drains gracefully, a second forces exit)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port",
        type=int,
        default=7878,
        help="TCP port (0 picks an ephemeral port, printed at startup)",
    )
    p.add_argument(
        "--socket",
        metavar="PATH",
        help="serve a unix domain socket here instead of TCP",
    )
    p.add_argument(
        "--workers", type=int, default=2, help="request worker threads"
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="admission queue capacity; a full queue sheds with a typed "
        "429-style reply (default 16)",
    )
    p.add_argument(
        "--max-payload",
        type=int,
        default=16 * 1024 * 1024,
        help="per-request payload cap in bytes (oversized: 413 reply)",
    )
    p.add_argument(
        "--io-timeout",
        type=float,
        default=10.0,
        help="seconds a message may take to arrive once started "
        "(slow-loris defence)",
    )
    p.add_argument(
        "--default-deadline",
        type=float,
        default=30.0,
        help="deadline for requests that set no deadline_ms",
    )
    p.add_argument(
        "--max-deadline",
        type=float,
        default=300.0,
        help="cap on client-requested deadlines",
    )
    p.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        help="per-client sustained requests/second (default: unlimited)",
    )
    p.add_argument(
        "--rate-burst", type=int, default=None, help="per-client burst size"
    )
    p.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive worker failures that open the circuit breaker",
    )
    p.add_argument(
        "--breaker-cooldown",
        type=float,
        default=5.0,
        help="seconds the breaker stays open before its half-open probe",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=1,
        help="supervised re-attempts per request before it fails 500",
    )
    p.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        help="seconds in-flight requests get to finish during drain "
        "before their deadlines are cancelled",
    )
    p.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="write the final repro.metrics/1 snapshot here on drain",
    )
    p.add_argument(
        "--debug-ops",
        action="store_true",
        help=argparse.SUPPRESS,  # sleep/fail ops for tests and the soak
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "fleet",
        help="run the dispatcher tier: route the serve protocol across "
        "N backends with health-checked failover and a verified result "
        "cache (SIGTERM drains the whole tier gracefully)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port",
        type=int,
        default=7800,
        help="TCP port (0 picks an ephemeral port, printed at startup)",
    )
    p.add_argument(
        "--socket",
        metavar="PATH",
        help="serve a unix domain socket here instead of TCP",
    )
    p.add_argument(
        "--backend",
        action="append",
        metavar="ADDR",
        help="backend address (HOST:PORT or unix:/path); repeatable",
    )
    p.add_argument(
        "--spawn",
        type=int,
        default=0,
        metavar="N",
        help="also spawn N local repro-serve backends on ephemeral ports "
        "(drained when the dispatcher exits)",
    )
    p.add_argument(
        "--backend-workers",
        type=int,
        default=2,
        help="worker threads per --spawn backend (default 2)",
    )
    p.add_argument(
        "--workers", type=int, default=4, help="concurrent relay threads"
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=32,
        help="admission queue capacity; a full queue sheds with a typed "
        "429-style reply (default 32)",
    )
    p.add_argument(
        "--max-payload",
        type=int,
        default=16 * 1024 * 1024,
        help="per-request payload cap in bytes (oversized: 413 reply)",
    )
    p.add_argument(
        "--io-timeout",
        type=float,
        default=10.0,
        help="seconds a message may take to arrive once started",
    )
    p.add_argument(
        "--default-deadline",
        type=float,
        default=30.0,
        help="deadline for requests that set no deadline_ms",
    )
    p.add_argument(
        "--max-deadline",
        type=float,
        default=300.0,
        help="cap on client-requested deadlines",
    )
    p.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        help="per-client sustained requests/second (default: unlimited)",
    )
    p.add_argument(
        "--rate-burst", type=int, default=None, help="per-client burst size"
    )
    p.add_argument(
        "--probe-interval",
        type=float,
        default=1.0,
        help="seconds between backend health probes (default 1)",
    )
    p.add_argument(
        "--probe-timeout",
        type=float,
        default=2.0,
        help="per-probe reply budget (default 2)",
    )
    p.add_argument(
        "--backend-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for a backend reply before failing over",
    )
    p.add_argument(
        "--failover-attempts",
        type=int,
        default=2,
        help="extra backends tried after an infrastructure failure "
        "(client errors are never retried; default 2)",
    )
    p.add_argument(
        "--hedge-after-ms",
        type=float,
        default=None,
        help="launch a tail-latency hedge on a second backend after this "
        "many ms without a reply (default: off)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="content-addressed result cache directory (default: off); "
        "entries are CRC-verified on every hit",
    )
    p.add_argument(
        "--cache-entries",
        type=int,
        default=1024,
        help="result-cache entry bound; oldest entries are evicted",
    )
    p.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        help="seconds in-flight requests get to finish during drain",
    )
    p.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="write the final repro.metrics/1 snapshot here on drain",
    )
    p.add_argument(
        "--debug-ops",
        action="store_true",
        help=argparse.SUPPRESS,  # relay sleep/fail for tests and the soak
    )
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser("list", help="list workloads, tables and circuits")
    p.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (``repro`` console script).

    Converts every typed library error and ``OSError`` into a one-line
    stderr message with a documented exit code (2 usage, 3 bad input,
    4 integrity failure, 5 unrecoverable batch shard) — no traceback
    ever reaches the operator.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return exc.exit_code
    except OSError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
