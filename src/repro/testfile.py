"""Plain-text test-vector file format.

One cube per line over the alphabet ``0``, ``1``, ``X`` (``-`` also
reads as X), ``#`` comments and blank lines ignored — the same shape as
the pattern files the classic ATPG tools emit, so externally generated
test sets drop straight into the compressor.

An optional ``# inputs: a b c`` header names the inputs; otherwise
positional names ``sc0..scN-1`` are used.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from .bitstream import TernaryVector
from .circuit.scan import TestSet
from .reliability.errors import TestFileError

__all__ = [
    "TestFileError",
    "read_test_file",
    "write_test_file",
    "parse_test_text",
    "format_test_text",
]


def parse_test_text(text: str, name: str = "testset") -> TestSet:
    """Parse the vector-file format from a string."""
    input_names: Optional[List[str]] = None
    cubes: List[TernaryVector] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if line.startswith("#"):
            body = line[1:].strip()
            if body.lower().startswith("inputs:"):
                input_names = body.split(":", 1)[1].split()
            continue
        if not line:
            continue
        try:
            cube = TernaryVector(line)
        except ValueError as exc:
            raise TestFileError(
                f"{name}:{lineno}: {exc}", source=name, line=lineno
            ) from None
        cubes.append(cube)
    if not cubes:
        raise TestFileError(f"{name}: no test vectors found", source=name)
    width = len(cubes[0])
    for i, cube in enumerate(cubes):
        if len(cube) != width:
            raise TestFileError(
                f"{name}: vector {i} has width {len(cube)}, expected {width}",
                source=name,
                line=i + 1,
            )
    if input_names is None:
        input_names = [f"sc{i}" for i in range(width)]
    elif len(input_names) != width:
        raise TestFileError(
            f"{name}: header names {len(input_names)} inputs but vectors "
            f"are {width} wide",
            source=name,
        )
    return TestSet(input_names, cubes, name=name)


def format_test_text(test_set: TestSet, header: bool = True) -> str:
    """Render a test set in the vector-file format."""
    lines = []
    if header:
        lines.append(f"# {test_set.summary()}")
        lines.append("# inputs: " + " ".join(test_set.input_names))
    lines.extend(str(cube) for cube in test_set.cubes)
    return "\n".join(lines) + "\n"


def read_test_file(path: Union[str, Path]) -> TestSet:
    """Load a vector file from disk; the set is named after the file."""
    path = Path(path)
    return parse_test_text(path.read_text(), name=path.stem)


def write_test_file(test_set: TestSet, path: Union[str, Path]) -> None:
    """Write a test set to disk in the vector-file format."""
    Path(path).write_text(format_test_text(test_set))
