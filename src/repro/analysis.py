"""Test-set analysis: structure, compressibility and scan power.

A DFT engineer deciding whether this scheme fits a core wants three
things quantified before compressing anything:

* **structure** — X density, per-cell care statistics, how clustered the
  care bits are (:func:`testset_profile`);
* **compressibility bounds** — an order-0 entropy estimate of the
  care-bit content, the floor any coder that keeps every care bit must
  respect (:func:`entropy_lower_bound`);
* **scan power** — the weighted transition count (WTM, Sankaralingam et
  al.) of the *assigned* stream.  Don't-care assignment trades
  compression against shift power: repeat-last fill minimises
  transitions while LZW's dictionary-driven fill does not, and
  :func:`power_report` quantifies that cost (an explicit trade-off the
  alternating-run-length literature the paper cites cares about).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from .bitstream import TernaryVector
from .circuit.scan import TestSet

__all__ = [
    "TestSetProfile",
    "testset_profile",
    "entropy_lower_bound",
    "weighted_transition_count",
    "PowerReport",
    "power_report",
]


@dataclass(frozen=True)
class TestSetProfile:
    """Structural statistics of one test set."""

    name: str
    vectors: int
    width: int
    total_bits: int
    care_bits: int
    x_percent: float
    ones_percent_of_care: float
    care_adjacency: float  # fraction of care bits whose neighbour cares
    per_cell_care: Dict[str, int]

    @property
    def hottest_cells(self) -> List[str]:
        """Cells specified most often (top 10)."""
        ranked = sorted(
            self.per_cell_care.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [name for name, _count in ranked[:10]]


def testset_profile(test_set: TestSet) -> TestSetProfile:
    """Compute the structural statistics of a test set."""
    care_bits = 0
    ones = 0
    adjacent = 0
    per_cell = {name: 0 for name in test_set.input_names}
    for cube in test_set:
        care_mask = cube.care_mask
        care_bits += cube.care_count
        ones += bin(cube.value_mask).count("1")
        adjacent += bin(care_mask & (care_mask >> 1)).count("1")
        remaining = care_mask
        while remaining:
            low = remaining & -remaining
            per_cell[test_set.input_names[low.bit_length() - 1]] += 1
            remaining ^= low
    total = test_set.total_bits
    return TestSetProfile(
        name=test_set.name,
        vectors=len(test_set),
        width=test_set.width,
        total_bits=total,
        care_bits=care_bits,
        x_percent=100.0 * (total - care_bits) / total if total else 0.0,
        ones_percent_of_care=100.0 * ones / care_bits if care_bits else 0.0,
        care_adjacency=adjacent / care_bits if care_bits else 0.0,
        per_cell_care=per_cell,
    )


def entropy_lower_bound(test_set: TestSet, block_bits: int = 8) -> float:
    """Order-0 entropy estimate of the care content, in bits.

    Blocks the zero-filled stream and sums ``-log2 p(block)`` under the
    empirical distribution — a coarse floor for block-based coders on
    this particular fill.  It is an *estimate* (a different X fill has a
    different entropy; the true optimum minimises over fills), but it
    calibrates how much headroom a measured ratio leaves.
    """
    if block_bits < 1:
        raise ValueError("block_bits must be >= 1")
    stream = test_set.to_stream().fill(0)
    counts: Dict[int, int] = {}
    blocks = 0
    for chunk in stream.chunks(block_bits):
        if len(chunk) < block_bits:
            break
        value = chunk.to_int()
        counts[value] = counts.get(value, 0) + 1
        blocks += 1
    if not blocks:
        return 0.0
    bits = 0.0
    for count in counts.values():
        p = count / blocks
        bits += -count * math.log2(p)
    return bits


def weighted_transition_count(vector: TernaryVector) -> int:
    """WTM of one fully specified scan vector.

    A transition while shifting bit position ``i`` (0 = scanned in
    first, i.e. ends up deepest) is weighted by how many cells it
    traverses: ``weight = width - i - 1`` under the usual convention.
    """
    if not vector.is_fully_specified:
        raise ValueError("WTM needs a fully specified vector; fill the Xs")
    width = len(vector)
    value = vector.value_mask
    total = 0
    for i in range(width - 1):
        if ((value >> i) & 1) != ((value >> (i + 1)) & 1):
            total += width - i - 1
    return total


@dataclass(frozen=True)
class PowerReport:
    """Scan-shift power comparison of X-assignment strategies."""

    name: str
    wtm: Dict[str, int]  # strategy -> total weighted transitions

    def overhead_percent(self, strategy: str, baseline: str = "repeat") -> float:
        """How much more shift power ``strategy`` costs than ``baseline``."""
        base = self.wtm[baseline]
        if base == 0:
            return 0.0
        return 100.0 * (self.wtm[strategy] - base) / base


def power_report(
    test_set: TestSet,
    assigned_streams: Optional[Dict[str, TernaryVector]] = None,
) -> PowerReport:
    """WTM of the standard fills plus any caller-supplied assignments.

    ``assigned_streams`` maps strategy names to fully specified streams
    of the same geometry (e.g. the LZW encoder's assignment), letting
    the caller weigh compression against shift power.
    """
    streams: Dict[str, TernaryVector] = {}
    original = test_set.to_stream()
    streams["zero"] = original.fill(0)
    streams["one"] = original.fill(1)
    streams["repeat"] = original.fill_repeat_last(0)
    if assigned_streams:
        for name, stream in assigned_streams.items():
            if len(stream) != len(original):
                raise ValueError(
                    f"assigned stream {name!r} has {len(stream)} bits, "
                    f"expected {len(original)}"
                )
            streams[name] = stream
    wtm: Dict[str, int] = {}
    width = test_set.width
    for name, stream in streams.items():
        total = 0
        for start in range(0, len(stream), width):
            total += weighted_transition_count(stream[start : start + width])
        wtm[name] = total
    return PowerReport(name=test_set.name, wtm=wtm)
