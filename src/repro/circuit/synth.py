"""Synthetic random-logic generator.

Without the proprietary ISCAS89/ITC99 distributions, end-to-end runs
need circuits of controlled size.  :func:`random_circuit` builds a
full-scan-style sequential netlist — random combinational logic with a
locality bias (fanins prefer recently created nets, giving realistic
depth) plus a register bank — that the ATPG substrate can generate
genuine test cubes for.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from .netlist import Circuit, Gate, GateType

__all__ = ["random_circuit"]

_DEFAULT_TYPES: Tuple[Tuple[str, float], ...] = (
    (GateType.NAND, 0.28),
    (GateType.NOR, 0.22),
    (GateType.AND, 0.16),
    (GateType.OR, 0.14),
    (GateType.NOT, 0.12),
    (GateType.XOR, 0.08),
)


def random_circuit(
    name: str,
    n_inputs: int,
    n_flops: int,
    n_gates: int,
    n_outputs: Optional[int] = None,
    seed: int = 0,
    locality: float = 0.05,
    uniform_fraction: float = 0.4,
    gate_types: Sequence[Tuple[str, float]] = _DEFAULT_TYPES,
) -> Circuit:
    """Generate a random sequential circuit.

    Parameters
    ----------
    n_inputs, n_flops, n_gates:
        Primary inputs, DFFs and combinational gates to create.
    n_outputs:
        Primary outputs to sample (default ``max(1, n_gates // 10)``).
        Dangling nets are always promoted to outputs as well, so the
        circuit contains no unobservable (dead) logic.
    seed:
        Deterministic generation seed.
    locality:
        Geometric-decay rate for fanin selection; higher values bias
        fanins toward recently created nets, deepening the circuit.
    uniform_fraction:
        Probability a fanin is drawn uniformly from the whole pool
        instead of locally — keeps the structure wide and testable.
    gate_types:
        ``(type, weight)`` choices for combinational gates.
    """
    if n_inputs < 1 or n_gates < 1:
        raise ValueError("need at least one input and one gate")
    if n_flops < 0:
        raise ValueError("n_flops must be non-negative")
    if not 0.0 <= uniform_fraction <= 1.0:
        raise ValueError("uniform_fraction must be within [0, 1]")
    rng = random.Random(seed)
    gates: List[Gate] = []

    inputs = [f"pi{i}" for i in range(n_inputs)]
    flop_outs = [f"ff{i}" for i in range(n_flops)]
    for net in inputs:
        gates.append(Gate(net, GateType.INPUT))

    # Net pool, oldest first; DFF outputs count as sources from the start.
    pool: List[str] = inputs + flop_outs
    types, weights = zip(*gate_types)

    def pick_fanin(exclude: Optional[str] = None) -> str:
        # Mostly-local selection with a uniform escape keeps circuits
        # both deep enough to be interesting and wide enough to test.
        while True:
            if rng.random() < uniform_fraction:
                net = rng.choice(pool)
            else:
                back = min(int(rng.expovariate(locality)), len(pool) - 1)
                net = pool[len(pool) - 1 - back]
            if net != exclude:
                return net

    comb_nets: List[str] = []
    for i in range(n_gates):
        gate_type = rng.choices(types, weights)[0]
        net = f"n{i}"
        if gate_type == GateType.NOT:
            fanins = (pick_fanin(),)
        else:
            arity = 2 if rng.random() < 0.8 else 3
            first = pick_fanin()
            fanins = (first,) + tuple(
                pick_fanin(exclude=first) for _ in range(arity - 1)
            )
        gates.append(Gate(net, gate_type, fanins))
        pool.append(net)
        comb_nets.append(net)

    # Register the flops on late combinational nets so state feeds back.
    for i, flop in enumerate(flop_outs):
        data = comb_nets[-(i % max(1, len(comb_nets))) - 1]
        gates.append(Gate(flop, GateType.DFF, (data,)))

    n_outputs = n_outputs if n_outputs is not None else max(1, n_gates // 10)
    n_outputs = min(n_outputs, len(comb_nets))
    outputs = set(rng.sample(comb_nets, n_outputs))
    # Promote dangling nets so no logic is unobservable.
    consumed = {f for g in gates for f in g.fanins}
    outputs.update(n for n in comb_nets if n not in consumed)
    return Circuit(name, gates, sorted(outputs))
