"""ISCAS89 `.bench` format reader and writer.

The `.bench` netlist format used by the ISCAS89 and ITC99 benchmark
distributions::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G10 = NOR(G14, G11)

Users with the real benchmark files can load them directly; the package
also ships two literature classics (``c17``, ``s27``) and three
hand-crafted functional blocks (``counter4``, ``mux41``, ``parity8``)
under ``repro/circuit/data`` for self-contained runs.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Union

try:  # Python 3.9+: importlib.resources.files
    from importlib.resources import files as _resource_files
except ImportError:  # pragma: no cover - very old interpreters
    _resource_files = None

from .netlist import Circuit, CircuitError, Gate, GateType

__all__ = ["parse_bench", "load_bench", "load_builtin", "write_bench", "BUILTIN_CIRCUITS"]

#: Netlists shipped with the package: two literature classics plus three
#: hand-crafted functional blocks used by the simulator tests.
BUILTIN_CIRCUITS = ("c17", "s27", "counter4", "mux41", "parity8")

_LINE_RE = re.compile(
    r"^\s*(?P<out>[\w\.\[\]]+)\s*=\s*(?P<type>\w+)\s*\((?P<ins>[^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([\w\.\[\]]+)\s*\)\s*$")

_TYPE_ALIASES = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUFF,
    "BUFF": GateType.BUFF,
    "DFF": GateType.DFF,
}


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse `.bench` source text into a :class:`Circuit`."""
    gates: List[Gate] = []
    outputs: List[str] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, net = io_match.groups()
            if kind == "INPUT":
                gates.append(Gate(net, GateType.INPUT))
            else:
                outputs.append(net)
            continue
        gate_match = _LINE_RE.match(line)
        if not gate_match:
            raise CircuitError(f"{name}:{lineno}: unparseable line {raw!r}")
        out = gate_match.group("out")
        raw_type = gate_match.group("type").upper()
        gate_type = _TYPE_ALIASES.get(raw_type)
        if gate_type is None:
            raise CircuitError(f"{name}:{lineno}: unknown gate type {raw_type!r}")
        fanins = tuple(
            s.strip() for s in gate_match.group("ins").split(",") if s.strip()
        )
        # Single-input AND/OR appear in some distributions; read as BUFF.
        if gate_type in (GateType.AND, GateType.OR) and len(fanins) == 1:
            gate_type = GateType.BUFF
        gates.append(Gate(out, gate_type, fanins))
    return Circuit(name, gates, outputs)


def load_bench(path: Union[str, Path]) -> Circuit:
    """Load a `.bench` file from disk; the circuit is named after the file."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def load_builtin(name: str) -> Circuit:
    """Load one of the shipped netlists (see :data:`BUILTIN_CIRCUITS`)."""
    if name not in BUILTIN_CIRCUITS:
        raise ValueError(f"unknown builtin {name!r}; have {BUILTIN_CIRCUITS}")
    if _resource_files is not None:
        text = (_resource_files("repro.circuit") / "data" / f"{name}.bench").read_text()
    else:  # pragma: no cover
        text = (Path(__file__).parent / "data" / f"{name}.bench").read_text()
    return parse_bench(text, name=name)


def write_bench(circuit: Circuit) -> str:
    """Render a :class:`Circuit` back to `.bench` text (round-trippable)."""
    lines: List[str] = [f"# {circuit.name}"]
    for net in circuit.inputs:
        lines.append(f"INPUT({net})")
    for net in circuit.outputs:
        lines.append(f"OUTPUT({net})")
    for gate in circuit.gates.values():
        if gate.gate_type == GateType.INPUT:
            continue
        fanins = ", ".join(gate.fanins)
        lines.append(f"{gate.name} = {gate.gate_type}({fanins})")
    return "\n".join(lines) + "\n"
