"""Gate-level netlist representation (ISCAS89-style).

A :class:`Circuit` is a named collection of :class:`Gate` objects over
single-output gates with the ISCAS89 primitive set (AND, NAND, OR, NOR,
XOR, XNOR, NOT, BUFF, DFF) plus primary inputs and outputs.  Sequential
elements (DFFs) exist so `.bench` files parse faithfully; the test
machinery operates on the *full-scan combinational view*
(:meth:`Circuit.combinational_view`), where every DFF output becomes a
pseudo primary input and every DFF input a pseudo primary output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["GateType", "Gate", "Circuit", "CircuitError", "COMBINATIONAL_GATES"]


class CircuitError(ValueError):
    """Raised for malformed netlists (undefined nets, cycles, bad arity)."""


class GateType:
    """Gate-type name constants (plain strings keep `.bench` I/O trivial)."""

    INPUT = "INPUT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUFF = "BUFF"
    DFF = "DFF"


#: Gate types with at least one fanin that compute a boolean function.
COMBINATIONAL_GATES = frozenset(
    {
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
        GateType.NOT,
        GateType.BUFF,
    }
)

_UNARY = frozenset({GateType.NOT, GateType.BUFF, GateType.DFF})


@dataclass(frozen=True)
class Gate:
    """One named net and the gate driving it."""

    name: str
    gate_type: str
    fanins: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.gate_type == GateType.INPUT:
            if self.fanins:
                raise CircuitError(f"INPUT {self.name} cannot have fanins")
        elif self.gate_type in _UNARY:
            if len(self.fanins) != 1:
                raise CircuitError(
                    f"{self.gate_type} {self.name} needs exactly 1 fanin"
                )
        elif self.gate_type in COMBINATIONAL_GATES:
            if len(self.fanins) < 2:
                raise CircuitError(
                    f"{self.gate_type} {self.name} needs >= 2 fanins"
                )
        else:
            raise CircuitError(f"unknown gate type {self.gate_type!r}")


class Circuit:
    """A named netlist with topological services.

    ``outputs`` lists the primary-output net names (they are driven by
    ordinary gates; OUTPUT is a role, not a gate type, as in `.bench`).
    """

    def __init__(
        self,
        name: str,
        gates: Iterable[Gate],
        outputs: Sequence[str],
    ) -> None:
        self.name = name
        self.gates: Dict[str, Gate] = {}
        for gate in gates:
            if gate.name in self.gates:
                raise CircuitError(f"net {gate.name} driven twice")
            self.gates[gate.name] = gate
        self.outputs: Tuple[str, ...] = tuple(outputs)
        self._validate()
        self._topo: List[str] = self._toposort()

    # ------------------------------------------------------------------
    @property
    def inputs(self) -> List[str]:
        """Primary-input net names, in declaration order."""
        return [g.name for g in self.gates.values() if g.gate_type == GateType.INPUT]

    @property
    def flops(self) -> List[str]:
        """DFF output net names, in declaration order."""
        return [g.name for g in self.gates.values() if g.gate_type == GateType.DFF]

    @property
    def is_sequential(self) -> bool:
        """True when the netlist contains any DFF."""
        return any(g.gate_type == GateType.DFF for g in self.gates.values())

    def gate_count(self, combinational_only: bool = True) -> int:
        """Number of gates (excluding INPUTs; optionally excluding DFFs)."""
        return sum(
            1
            for g in self.gates.values()
            if g.gate_type != GateType.INPUT
            and (not combinational_only or g.gate_type != GateType.DFF)
        )

    def topological_order(self) -> List[str]:
        """Net names in evaluation order (DFF outputs act as sources)."""
        return list(self._topo)

    def fanouts(self) -> Dict[str, List[str]]:
        """Net name -> gates it feeds (combinational fanout map)."""
        out: Dict[str, List[str]] = {name: [] for name in self.gates}
        for gate in self.gates.values():
            if gate.gate_type == GateType.DFF:
                continue  # DFF input is consumed at the next cycle boundary
            for fanin in gate.fanins:
                out[fanin].append(gate.name)
        return out

    # ------------------------------------------------------------------
    def combinational_view(self) -> "CombinationalView":
        """The full-scan view: DFFs become pseudo PIs/POs.

        This is what ATPG and fault simulation target, mirroring how
        scan insertion exposes the state elements to the tester.
        """
        pseudo_inputs = self.flops
        pseudo_outputs = [self.gates[f].fanins[0] for f in pseudo_inputs]
        return CombinationalView(
            circuit=self,
            primary_inputs=self.inputs,
            pseudo_inputs=pseudo_inputs,
            primary_outputs=list(self.outputs),
            pseudo_outputs=pseudo_outputs,
        )

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for gate in self.gates.values():
            for fanin in gate.fanins:
                if fanin not in self.gates:
                    raise CircuitError(
                        f"gate {gate.name} references undefined net {fanin}"
                    )
        for output in self.outputs:
            if output not in self.gates:
                raise CircuitError(f"undefined primary output {output}")

    def _toposort(self) -> List[str]:
        """Kahn's algorithm over the combinational edges."""
        indegree: Dict[str, int] = {}
        for gate in self.gates.values():
            if gate.gate_type in (GateType.INPUT, GateType.DFF):
                indegree[gate.name] = 0
            else:
                indegree[gate.name] = len(gate.fanins)
        fanout = self.fanouts()
        ready = [n for n, d in indegree.items() if d == 0]
        order: List[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for succ in fanout[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.gates):
            cyclic = sorted(n for n, d in indegree.items() if d > 0)
            raise CircuitError(f"combinational cycle through {cyclic[:5]}")
        return order

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Circuit {self.name}: {len(self.inputs)} PIs, "
            f"{len(self.flops)} FFs, {self.gate_count()} gates, "
            f"{len(self.outputs)} POs>"
        )


@dataclass(frozen=True)
class CombinationalView:
    """Full-scan test view of a circuit.

    ``test_inputs`` (primary then pseudo) is the cube bit order used by
    every downstream tool: ATPG cubes, scan chains and the compressors
    all index bits in this order.
    """

    circuit: Circuit
    primary_inputs: List[str]
    pseudo_inputs: List[str]
    primary_outputs: List[str]
    pseudo_outputs: List[str]

    @property
    def test_inputs(self) -> List[str]:
        """All controllable nets, primary inputs first."""
        return self.primary_inputs + self.pseudo_inputs

    @property
    def test_outputs(self) -> List[str]:
        """All observable nets, primary outputs first."""
        return self.primary_outputs + self.pseudo_outputs

    @property
    def width(self) -> int:
        """Cube width in bits."""
        return len(self.primary_inputs) + len(self.pseudo_inputs)
