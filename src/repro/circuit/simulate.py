"""Three-valued (0/1/X) logic simulation with optional fault injection.

The simulator evaluates a :class:`~repro.circuit.netlist.Circuit` in
topological order under the usual pessimistic X semantics (a controlling
value dominates; otherwise any X fanin makes the output X).  A single
stuck-at fault — on a stem or on one gate-input branch — can be injected,
which is all serial fault simulation and PODEM's D-propagation checks
need.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..bitstream import TernaryVector
from .faults import Fault
from .netlist import Circuit, CombinationalView, GateType

__all__ = ["evaluate", "simulate_cube", "outputs_of"]

Value = Optional[int]  # 0, 1 or None (X)


def _and(values) -> Value:
    saw_x = False
    for v in values:
        if v == 0:
            return 0
        if v is None:
            saw_x = True
    return None if saw_x else 1


def _or(values) -> Value:
    saw_x = False
    for v in values:
        if v == 1:
            return 1
        if v is None:
            saw_x = True
    return None if saw_x else 0


def _xor(values) -> Value:
    acc = 0
    for v in values:
        if v is None:
            return None
        acc ^= v
    return acc


def _invert(v: Value) -> Value:
    return None if v is None else 1 - v


_EVAL = {
    GateType.AND: _and,
    GateType.NAND: lambda vs: _invert(_and(vs)),
    GateType.OR: _or,
    GateType.NOR: lambda vs: _invert(_or(vs)),
    GateType.XOR: _xor,
    GateType.XNOR: lambda vs: _invert(_xor(vs)),
    GateType.BUFF: lambda vs: vs[0],
    GateType.NOT: lambda vs: _invert(vs[0]),
}


def evaluate(
    circuit: Circuit,
    assignment: Dict[str, Value],
    fault: Optional[Fault] = None,
) -> Dict[str, Value]:
    """Evaluate every net given source values (PIs and DFF outputs).

    ``assignment`` maps INPUT and DFF net names to 0/1/None; missing
    sources default to X.  With ``fault`` set, the faulty machine is
    simulated instead: a stem fault forces the net's value everywhere, a
    branch fault forces it only at the named gate input.
    """
    values: Dict[str, Value] = {}
    for name in circuit.topological_order():
        gate = circuit.gates[name]
        if gate.gate_type in (GateType.INPUT, GateType.DFF):
            value = assignment.get(name)
        else:
            fanin_values = []
            for index, fanin in enumerate(gate.fanins):
                v = values[fanin]
                if (
                    fault is not None
                    and fault.branch is not None
                    and fault.branch == (name, index)
                ):
                    v = fault.stuck
                fanin_values.append(v)
            value = _EVAL[gate.gate_type](fanin_values)
        if fault is not None and fault.branch is None and name == fault.net:
            value = fault.stuck
        values[name] = value
    return values


def simulate_cube(
    view: CombinationalView,
    cube: TernaryVector,
    fault: Optional[Fault] = None,
) -> Dict[str, Value]:
    """Evaluate the full-scan view under a test cube.

    ``cube`` bit ``i`` drives ``view.test_inputs[i]``; X bits stay X.
    """
    if len(cube) != view.width:
        raise ValueError(
            f"cube width {len(cube)} does not match view width {view.width}"
        )
    assignment = dict(zip(view.test_inputs, cube))
    return evaluate(view.circuit, assignment, fault)


def outputs_of(view: CombinationalView, values: Dict[str, Value]) -> Dict[str, Value]:
    """Project a value map onto the view's observable outputs."""
    return {name: values[name] for name in view.test_outputs}
