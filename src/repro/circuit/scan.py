"""Scan-chain model and test-set container.

The compression pipeline sees a core as one (or more) scan chains: a
test set is an ordered list of ternary cubes over the full-scan view's
inputs, and the ATE-facing artefact is the concatenated scan-in stream.
:class:`TestSet` is the bridge between the ATPG substrate (which emits
cubes) and the compressors (which consume one ternary stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..bitstream import TernaryVector
from .netlist import CombinationalView

__all__ = ["ScanChain", "TestSet"]


@dataclass(frozen=True)
class ScanChain:
    """An ordered scan chain over named cells.

    ``cells[0]`` is the cell nearest the scan input: it receives the
    *last* bit shifted in.  :meth:`shift_order` gives the bit order the
    ATE must stream so the chain ends up holding the vector.
    """

    name: str
    cells: Sequence[str]

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("a scan chain needs at least one cell")
        if len(set(self.cells)) != len(self.cells):
            raise ValueError("scan chain cells must be unique")

    @property
    def length(self) -> int:
        """Number of cells in the chain."""
        return len(self.cells)

    def shift_order(self) -> List[str]:
        """Cell names in the order their bits enter the scan input."""
        return list(reversed(self.cells))

    def load(self, vector: TernaryVector) -> Dict[str, Optional[int]]:
        """Map a vector (in ``cells`` order) onto cell values."""
        if len(vector) != self.length:
            raise ValueError("vector width does not match chain length")
        return dict(zip(self.cells, vector))


class TestSet:
    """An ordered set of ternary test cubes over named inputs."""

    # Not a pytest test class, despite the domain-standard name.
    __test__ = False

    def __init__(
        self,
        input_names: Sequence[str],
        cubes: Optional[List[TernaryVector]] = None,
        name: str = "testset",
    ) -> None:
        self.name = name
        self.input_names = list(input_names)
        self.cubes: List[TernaryVector] = []
        for cube in cubes or []:
            self.append(cube)

    @classmethod
    def for_view(cls, view: CombinationalView, name: str = "testset") -> "TestSet":
        """An empty test set shaped for a full-scan view."""
        return cls(view.test_inputs, name=name)

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Bits per vector."""
        return len(self.input_names)

    @property
    def total_bits(self) -> int:
        """Uncompressed test-data volume (the tables' "Orig. Size")."""
        return self.width * len(self.cubes)

    @property
    def x_density(self) -> float:
        """Fraction of don't-care bits across the whole set."""
        if not self.cubes:
            return 0.0
        x = sum(c.x_count for c in self.cubes)
        return x / self.total_bits

    @property
    def x_density_percent(self) -> float:
        """X density in percent (Table 3's "Don't Cares" column)."""
        return 100.0 * self.x_density

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self):
        return iter(self.cubes)

    def append(self, cube: TernaryVector) -> None:
        """Add a cube, enforcing the common width."""
        if len(cube) != self.width:
            raise ValueError(
                f"cube width {len(cube)} does not match test set width {self.width}"
            )
        self.cubes.append(cube)

    # ------------------------------------------------------------------
    def to_stream(self) -> TernaryVector:
        """Concatenate all cubes into the single scan-in stream."""
        return TernaryVector.concat_all(self.cubes)

    @classmethod
    def from_stream(
        cls,
        stream: TernaryVector,
        input_names: Sequence[str],
        name: str = "testset",
    ) -> "TestSet":
        """Split a scan stream back into vectors (inverse of to_stream)."""
        width = len(input_names)
        if width == 0 or len(stream) % width:
            raise ValueError("stream length is not a multiple of the vector width")
        cubes = stream.chunks(width)
        return cls(input_names, cubes, name=name)

    def assignment(self, index: int) -> Dict[str, Optional[int]]:
        """Input-name to value mapping for vector ``index``."""
        return dict(zip(self.input_names, self.cubes[index]))

    def summary(self) -> str:
        """One-line description used by the CLI and experiment logs."""
        return (
            f"{self.name}: {len(self.cubes)} vectors x {self.width} bits "
            f"= {self.total_bits} bits, {self.x_density_percent:.2f}% X"
        )
