"""Single stuck-at fault model with structural equivalence collapsing.

The fault universe contains, for each net, stem faults (the net stuck at
0/1 everywhere) and, for each gate input whose source net fans out to
more than one consumer, branch faults (stuck only at that input pin —
the checkpoint positions).  :func:`collapse_faults` then merges the
classic gate-local equivalences:

* ``BUFF``: input sa-v ≡ output sa-v;   ``NOT``: input sa-v ≡ output sa-(1-v)
* ``AND``:  any input sa-0 ≡ output sa-0;  ``NAND``: input sa-0 ≡ output sa-1
* ``OR``:   any input sa-1 ≡ output sa-1;  ``NOR``:  input sa-1 ≡ output sa-0

keeping one representative per equivalence class (XOR/XNOR contribute no
structural equivalences).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .netlist import Circuit, GateType

__all__ = ["Fault", "full_fault_list", "collapse_faults"]


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault.

    ``branch`` is ``None`` for a stem fault on ``net``; for a branch
    fault it names ``(consuming_gate, fanin_index)`` and ``net`` is the
    source net feeding that pin.
    """

    net: str
    stuck: int
    branch: Optional[Tuple[str, int]] = None

    def __post_init__(self) -> None:
        if self.stuck not in (0, 1):
            raise ValueError("stuck value must be 0 or 1")

    @property
    def sort_key(self):
        """Total-order key (branch faults sort after their stem)."""
        return (self.net, self.branch is not None, self.branch or ("", -1), self.stuck)

    def __str__(self) -> str:
        site = self.net
        if self.branch is not None:
            site = f"{self.net}->{self.branch[0]}.{self.branch[1]}"
        return f"{site} sa{self.stuck}"


def full_fault_list(circuit: Circuit) -> List[Fault]:
    """Every stem fault plus branch faults at fanout points."""
    fanout_count: Dict[str, int] = {name: 0 for name in circuit.gates}
    for gate in circuit.gates.values():
        for fanin in gate.fanins:
            fanout_count[fanin] += 1
    faults: List[Fault] = []
    for name in circuit.gates:
        faults.append(Fault(name, 0))
        faults.append(Fault(name, 1))
    for gate in circuit.gates.values():
        if gate.gate_type in (GateType.INPUT, GateType.DFF):
            # A branch fault at a scan-flop data pin is dominated by the
            # stem fault: in full scan the pin is itself a pseudo primary
            # output, so activating the stem already detects the branch.
            continue
        for index, fanin in enumerate(gate.fanins):
            if fanout_count[fanin] > 1:
                faults.append(Fault(fanin, 0, branch=(gate.name, index)))
                faults.append(Fault(fanin, 1, branch=(gate.name, index)))
    return faults


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Fault, Fault] = {}

    def find(self, fault: Fault) -> Fault:
        parent = self._parent.setdefault(fault, fault)
        if parent is fault or parent == fault:
            return fault
        root = self.find(parent)
        self._parent[fault] = root
        return root

    def union(self, a: Fault, b: Fault) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic representative: the smaller fault wins.
            keep, drop = (ra, rb) if ra.sort_key < rb.sort_key else (rb, ra)
            self._parent[drop] = keep


def collapse_faults(circuit: Circuit) -> List[Fault]:
    """Equivalence-collapsed fault list (sorted, deterministic)."""
    faults = full_fault_list(circuit)
    present = set(faults)
    fanout_count: Dict[str, int] = {name: 0 for name in circuit.gates}
    for gate in circuit.gates.values():
        for fanin in gate.fanins:
            fanout_count[fanin] += 1

    def input_fault(gate_name: str, index: int, net: str, stuck: int) -> Fault:
        """The fault object modelling 'this gate input stuck-at'."""
        if fanout_count[net] > 1:
            return Fault(net, stuck, branch=(gate_name, index))
        return Fault(net, stuck)

    uf = _UnionFind()
    for gate in circuit.gates.values():
        gtype = gate.gate_type
        if gtype in (GateType.INPUT, GateType.DFF):
            continue
        out0, out1 = Fault(gate.name, 0), Fault(gate.name, 1)
        for index, fanin in enumerate(gate.fanins):
            in0 = input_fault(gate.name, index, fanin, 0)
            in1 = input_fault(gate.name, index, fanin, 1)
            if gtype == GateType.BUFF:
                uf.union(in0, out0)
                uf.union(in1, out1)
            elif gtype == GateType.NOT:
                uf.union(in0, out1)
                uf.union(in1, out0)
            elif gtype == GateType.AND:
                uf.union(in0, out0)
            elif gtype == GateType.NAND:
                uf.union(in0, out1)
            elif gtype == GateType.OR:
                uf.union(in1, out1)
            elif gtype == GateType.NOR:
                uf.union(in1, out0)
            # XOR/XNOR: no structural equivalence.

    classes: Dict[Fault, Fault] = {}
    for fault in faults:
        root = uf.find(fault)
        best = classes.get(root)
        if best is None or fault.sort_key < best.sort_key:
            classes[root] = fault
    assert all(f in present for f in classes.values())
    return sorted(set(classes.values()), key=lambda f: f.sort_key)
