"""Gate-level circuit substrate: netlists, `.bench` I/O, simulation,
faults, scan chains and a synthetic circuit generator."""

from .bench import (
    BUILTIN_CIRCUITS,
    load_bench,
    load_builtin,
    parse_bench,
    write_bench,
)
from .faults import Fault, collapse_faults, full_fault_list
from .netlist import (
    COMBINATIONAL_GATES,
    Circuit,
    CircuitError,
    CombinationalView,
    Gate,
    GateType,
)
from .scan import ScanChain, TestSet
from .simulate import evaluate, outputs_of, simulate_cube
from .synth import random_circuit

__all__ = [
    "BUILTIN_CIRCUITS",
    "COMBINATIONAL_GATES",
    "Circuit",
    "CircuitError",
    "CombinationalView",
    "Fault",
    "Gate",
    "GateType",
    "ScanChain",
    "TestSet",
    "collapse_faults",
    "evaluate",
    "full_fault_list",
    "load_bench",
    "load_builtin",
    "outputs_of",
    "parse_bench",
    "random_circuit",
    "simulate_cube",
    "write_bench",
]
