"""The versioned metrics-JSON schema and its event vocabulary.

Every ``--metrics-json`` file and every recorder snapshot embedded in a
report uses one stable shape::

    {
      "schema": "repro.metrics/1",
      "counters":   {"encode.codes": 123, ...},
      "histograms": {"encode.phrase_len_chars": {"1": 40, "2": 12}, ...},
      "spans":      [{"name": "encode", "seconds": 0.0123}, ...]
    }

``counters`` and ``histograms`` are deterministic functions of the
compressed inputs (identical across worker counts and runs); ``spans``
carry wall-clock timings and are the *only* non-deterministic part —
:func:`strip_timing` removes them, and is what the determinism tests and
any cross-run diffing should compare.  Histogram bins are keyed by the
stringified integer value (JSON objects cannot have int keys).

Schema evolution: additions of new counter/histogram names are
backwards-compatible and do not bump the version; renaming or changing
the meaning of an existing name, or reshaping the envelope, bumps the
``repro.metrics/N`` tag.  Consumers must ignore names they do not know.

The event-name constants below are the full vocabulary version 1
defines; instrumented code imports these rather than re-typing strings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..reliability.atomic import atomic_write_text
from .recorder import Recorder

__all__ = [
    "SCHEMA_VERSION",
    "metrics_snapshot",
    "strip_timing",
    "write_metrics_json",
    # counter names
    "ENCODE_CHARS",
    "ENCODE_CODES",
    "ENCODE_XBITS",
    "DICT_ALLOCS",
    "DICT_RESETS",
    "DICT_FULL_SKIPS",
    "DICT_CMDATA_TRUNCATIONS",
    "DECODE_CODES",
    "DECODE_CHARS",
    "DECODE_DICT_ENTRIES",
    "DECODE_RESETS",
    "CONTAINER_BYTES_WRITTEN",
    "CONTAINER_BYTES_READ",
    "CONTAINER_SEGMENTS_WRITTEN",
    "CONTAINER_SEGMENTS_READ",
    "STREAM_CHUNKS_FED",
    "STREAM_FRAMES_WRITTEN",
    "STREAM_FRAMES_READ",
    "STREAM_FRAMES_SALVAGED",
    "BATCH_WORKLOADS",
    "BATCH_SHARDS",
    "BATCH_RETRIES",
    "BATCH_WORKER_CRASHES",
    "BATCH_TIMEOUTS",
    "BATCH_DEGRADED_SHARDS",
    "BATCH_SKIPPED_SHARDS",
    "BATCH_JOURNAL_HITS",
    "BATCH_SEEDED_SHARDS",
    "BATCH_SEED_REDERIVATIONS",
    "SERVICE_REQUESTS",
    "SERVICE_ACCEPTED",
    "SERVICE_COMPLETED",
    "SERVICE_ERRORS",
    "SERVICE_SHED",
    "SERVICE_DEADLINE_EXCEEDED",
    "SERVICE_BREAKER_OPEN",
    "SERVICE_DRAINED",
    "SERVICE_PROTOCOL_ERRORS",
    "SERVICE_DISCONNECTS",
    "FLEET_REQUESTS",
    "FLEET_CACHE_HITS",
    "FLEET_CACHE_MISSES",
    "FLEET_CACHE_CORRUPT",
    "FLEET_CACHE_EVICTIONS",
    "FLEET_FAILOVERS",
    "FLEET_HEDGES",
    "FLEET_HEDGE_WINS",
    "FLEET_BACKEND_ERRORS",
    "FLEET_NO_BACKENDS",
    "FLEET_PROBE_FAILURES",
    # histogram names
    "HIST_PHRASE_LEN",
    "HIST_XBITS_PER_PHRASE",
    "HIST_CODES_PER_WIDTH",
    "HIST_REQUEST_LATENCY_MS",
    "HIST_ROUTING_LATENCY_MS",
]

#: Version tag embedded in every emitted snapshot.
SCHEMA_VERSION = "repro.metrics/1"

# -- encoder counters --------------------------------------------------
#: Ternary characters consumed (includes the X-padded final character).
ENCODE_CHARS = "encode.chars"
#: Codes emitted; one per LZW phrase.
ENCODE_CODES = "encode.codes"
#: Don't-care bits the encoder resolved (includes final-char padding).
ENCODE_XBITS = "encode.xbits_assigned"
#: Dictionary entries allocated (across resets, total allocations).
DICT_ALLOCS = "dict.allocs"
#: Adaptive-variant dictionary flushes (``reset_on_full``).
DICT_RESETS = "dict.resets"
#: Allocations skipped because all ``N`` codes were in use.
DICT_FULL_SKIPS = "dict.full_skips"
#: Allocations skipped because the entry would exceed ``C_MDATA``.
DICT_CMDATA_TRUNCATIONS = "dict.cmdata_truncations"

# -- decoder counters --------------------------------------------------
#: Codes consumed by the decode loop.
DECODE_CODES = "decode.codes"
#: Characters the decode expanded to.
DECODE_CHARS = "decode.chars"
#: Dictionary rebuild steps (entries the decoder allocated).
DECODE_DICT_ENTRIES = "decode.dict_entries"
#: Adaptive-variant flushes the decoder mirrored.
DECODE_RESETS = "decode.resets"

# -- container counters ------------------------------------------------
CONTAINER_BYTES_WRITTEN = "container.bytes_written"
CONTAINER_BYTES_READ = "container.bytes_read"
CONTAINER_SEGMENTS_WRITTEN = "container.segments_written"
CONTAINER_SEGMENTS_READ = "container.segments_read"

# -- streaming (v5) container counters ---------------------------------
#: Input chunks fed to a StreamEncoder (any size, including empty).
STREAM_CHUNKS_FED = "stream.chunks_fed"
#: v5 data frames written (terminal frames not counted).
STREAM_FRAMES_WRITTEN = "stream.frames_written"
#: v5 data frames read and structurally validated.
STREAM_FRAMES_READ = "stream.frames_read"
#: Complete frames recovered by salvage from a damaged v5 container.
STREAM_FRAMES_SALVAGED = "stream.frames_salvaged"

# -- batch-engine counters ---------------------------------------------
BATCH_WORKLOADS = "batch.workloads"
BATCH_SHARDS = "batch.shards"
#: Shard attempts re-submitted by the supervisor after a failure.
BATCH_RETRIES = "batch.retries"
#: Pool-break events (a worker process died, e.g. SIGKILL/OOM).
BATCH_WORKER_CRASHES = "batch.worker_crashes"
#: Shard attempts abandoned because they exceeded the shard timeout.
BATCH_TIMEOUTS = "batch.timeouts"
#: Shards recovered by the inline (serial) fallback after pool retries.
BATCH_DEGRADED_SHARDS = "batch.degraded_shards"
#: Shards given up on under ``on_failure="skip"`` (surfaced as ShardError).
BATCH_SKIPPED_SHARDS = "batch.skipped_shards"
#: Shards restored from a checkpoint journal instead of re-encoded.
BATCH_JOURNAL_HITS = "batch.journal_hits"
#: Shards encoded from a warm (preamble or chained) dictionary seed.
BATCH_SEEDED_SHARDS = "batch.seeded_shards"
#: Chained seeds re-derived from the predecessor's codes because the
#: shipped final-state snapshot was missing or unreadable.
BATCH_SEED_REDERIVATIONS = "batch.seed_rederivations"

# -- service counters (repro serve) ------------------------------------
#: Requests fully received and parsed off a client connection.
SERVICE_REQUESTS = "service.requests"
#: Requests admitted to the work queue.
SERVICE_ACCEPTED = "service.accepted"
#: Requests that produced a successful reply.
SERVICE_COMPLETED = "service.completed"
#: Requests that produced a typed error reply (bad input, internal).
SERVICE_ERRORS = "service.errors"
#: Requests shed by admission control (queue full or rate limited).
SERVICE_SHED = "service.shed"
#: Requests rejected or aborted because their deadline expired.
SERVICE_DEADLINE_EXCEEDED = "service.deadline_exceeded"
#: Requests rejected because the circuit breaker was open.
SERVICE_BREAKER_OPEN = "service.breaker_open"
#: Requests shed because the server was draining (includes queued
#: requests flushed with a typed reply at drain time).
SERVICE_DRAINED = "service.drained"
#: Connections dropped for protocol violations (garbage, oversized,
#: slow clients that blew the I/O budget).
SERVICE_PROTOCOL_ERRORS = "service.protocol_errors"
#: Replies that could not be delivered (client hung up mid-request).
SERVICE_DISCONNECTS = "service.disconnects"

# -- fleet counters (repro fleet dispatcher) ---------------------------
#: Requests routed by the dispatcher (cache hits included).
FLEET_REQUESTS = "fleet.requests"
#: Compress requests served from the verified result cache.
FLEET_CACHE_HITS = "fleet.cache_hits"
#: Cacheable requests that had no (valid) cache entry.
FLEET_CACHE_MISSES = "fleet.cache_misses"
#: Cache entries that failed CRC/digest verification on read; each one
#: is unlinked and treated as a miss — corrupt bytes are never served.
FLEET_CACHE_CORRUPT = "fleet.cache_corrupt"
#: Cache entries removed to enforce the entry-count bound.
FLEET_CACHE_EVICTIONS = "fleet.cache_evictions"
#: Requests retried on another backend after an infrastructure failure.
FLEET_FAILOVERS = "fleet.failovers"
#: Tail-latency hedges launched against a secondary backend.
FLEET_HEDGES = "fleet.hedges"
#: Hedged requests where the secondary's reply was used.
FLEET_HEDGE_WINS = "fleet.hedge_wins"
#: Backend transport/infrastructure failures observed by the dispatcher.
FLEET_BACKEND_ERRORS = "fleet.backend_errors"
#: Requests shed with a typed 503 because no healthy backend remained.
FLEET_NO_BACKENDS = "fleet.no_backends"
#: Health probes that failed (connect error, timeout, bad reply).
FLEET_PROBE_FAILURES = "fleet.probe_failures"

# -- histograms --------------------------------------------------------
#: LZW phrase lengths, in characters.
HIST_PHRASE_LEN = "encode.phrase_len_chars"
#: Don't-care bits resolved per phrase.
HIST_XBITS_PER_PHRASE = "encode.xbits_per_phrase"
#: Codes emitted keyed by their bit width ``C_E``.
HIST_CODES_PER_WIDTH = "encode.codes_per_width"
#: End-to-end request latency, bucketed to whole milliseconds.
HIST_REQUEST_LATENCY_MS = "service.request_latency_ms"
#: Dispatcher routing overhead (fingerprint + backend selection +
#: cache lookup), bucketed to whole milliseconds.
HIST_ROUTING_LATENCY_MS = "fleet.routing_latency_ms"


def metrics_snapshot(recorder: Recorder, partial: bool = False) -> dict:
    """Wrap a recorder's snapshot in the versioned envelope.

    Missing sections are filled with empty values so every emitted file
    has the same four keys regardless of which sinks were attached.

    ``partial=True`` marks an envelope flushed mid-run (an interrupted
    ``compress``/``batch``, a draining server): the counters are valid
    but cover only the work done so far.  Complete envelopes omit the
    key entirely, so existing consumers and goldens are unaffected.
    """
    data = recorder.snapshot()
    envelope = {
        "schema": SCHEMA_VERSION,
        "counters": data.get("counters", {}),
        "histograms": data.get("histograms", {}),
        "spans": data.get("spans", []),
    }
    if partial:
        envelope["partial"] = True
    return envelope


def strip_timing(snapshot: dict) -> dict:
    """The deterministic part of a snapshot: drop span timings.

    Span *names* stay (their sequence is deterministic); only the
    measured ``seconds`` go.  Two runs over the same inputs — at any
    worker count — must agree on this projection exactly.
    """
    out = dict(snapshot)
    out["spans"] = [{"name": entry["name"]} for entry in snapshot.get("spans", [])]
    return out


def write_metrics_json(
    recorder: Recorder, path: Union[str, Path], partial: bool = False
) -> dict:
    """Write a recorder's snapshot to ``path``; returns the envelope.

    The write is atomic (tmp + fsync + rename), so a consumer polling
    the file never reads a torn envelope — which matters for the
    ``partial=True`` flushes written from signal handlers.
    """
    envelope = metrics_snapshot(recorder, partial=partial)
    atomic_write_text(path, json.dumps(envelope, indent=2, sort_keys=True) + "\n")
    return envelope
