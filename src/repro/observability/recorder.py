"""Recorder protocol and its three implementations.

A *recorder* is the sink for the instrumentation events the compression
pipeline emits: monotonic counters, integer-valued histograms and
wall-time spans.  The seams that emit events (:class:`~repro.core.encoder.
LZWEncoder`, :func:`~repro.core.decoder.iter_decode`, the container
serialisers, :func:`~repro.parallel.compress_batch`) all accept an
optional recorder and default to the shared :data:`NULL_RECORDER`
singleton, whose :attr:`~Recorder.enabled` flag is ``False`` — every
instrumented seam hoists that flag into a local once per call, so the
uninstrumented hot path pays one attribute read per *call*, not per
event (``benchmarks/bench_overhead.py`` enforces the <= 5% budget).

Three concrete sinks:

* :class:`NullRecorder` — discards everything; the default.
* :class:`CounterRecorder` — accumulates counters and histograms.  All
  its data is a deterministic function of the inputs (no clocks), which
  is what makes counter snapshots usable as golden-file oracles and as
  the ``workers=1`` vs ``workers=N`` equality invariant.
* :class:`SpanRecorder` — wall-time spans for pipeline stages
  (plan/encode/pack/reassemble), in completion order.

:class:`CompositeRecorder` fans events out to several sinks so the CLI
can collect counters and spans in one run.  Worker processes cannot
share a recorder object, so the parallel engine ships each shard's
snapshot dict back with its result and the parent calls
:meth:`Recorder.merge_child` in deterministic ``(workload, shard)``
order — counters sum, histograms sum bin-wise and spans append under a
``label.`` prefix, making merged output independent of worker count and
completion order (timing values aside).
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Recorder",
    "NullRecorder",
    "CounterRecorder",
    "SpanRecorder",
    "CompositeRecorder",
    "NULL_RECORDER",
]


class _NullSpan:
    """Context manager that does nothing (the disabled-span fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Recorder:
    """Base recorder: the event vocabulary, as no-ops.

    Subclasses override the events they care about.  ``enabled`` is the
    single attribute instrumented code may check to skip event emission
    entirely; it must be ``False`` only when every event is a no-op.
    """

    #: Instrumented seams read this once per call; ``False`` means every
    #: event method is a no-op and may be skipped.
    enabled: bool = True

    def incr(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the monotonic counter ``name``."""

    def observe(self, name: str, value: int, count: int = 1) -> None:
        """Count an occurrence of integer ``value`` in histogram ``name``."""

    def span(self, name: str):
        """Context manager timing one pipeline stage."""
        return _NULL_SPAN

    def merge_child(self, snapshot: Optional[dict], label: str) -> None:
        """Fold a child snapshot (e.g. from a worker process) into this sink.

        Counters and histogram bins sum; spans append with their names
        prefixed by ``label.``.  ``None`` snapshots are ignored so
        callers can pass through un-instrumented results.
        """

    def snapshot(self) -> dict:
        """The sink's accumulated data as plain JSON-serialisable dicts."""
        return {}


class NullRecorder(Recorder):
    """Discards every event; the default recorder everywhere."""

    enabled = False


#: Shared default sink — identity-comparable, never records anything.
NULL_RECORDER = NullRecorder()


class CounterRecorder(Recorder):
    """Monotonic counters and integer histograms; no clocks involved.

    Everything it accumulates is a pure function of the instrumented
    run's inputs, so two runs over the same data must produce equal
    snapshots no matter how the work was scheduled.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Dict[int, int]] = {}

    def incr(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: int, count: int = 1) -> None:
        hist = self.histograms.setdefault(name, {})
        hist[value] = hist.get(value, 0) + count

    def merge_child(self, snapshot: Optional[dict], label: str) -> None:
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.incr(name, value)
        for name, bins in snapshot.get("histograms", {}).items():
            for value, count in bins.items():
                self.observe(name, int(value), count)

    def histogram_total(self, name: str) -> int:
        """Number of observations in histogram ``name``."""
        return sum(self.histograms.get(name, {}).values())

    def histogram_weighted_sum(self, name: str) -> int:
        """``sum(value * count)`` over histogram ``name``'s bins."""
        return sum(v * c for v, c in self.histograms.get(name, {}).items())

    def snapshot(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: {str(v): c for v, c in sorted(bins.items())}
                for name, bins in sorted(self.histograms.items())
            },
        }


class _Span:
    """One live span; records its duration on exit."""

    __slots__ = ("_recorder", "_name", "_start")

    def __init__(self, recorder: "SpanRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._recorder._record(self._name, time.perf_counter() - self._start)


class SpanRecorder(Recorder):
    """Wall-time spans for pipeline stages, in completion order.

    Span *names and order* are deterministic for a given input (the
    instrumented stages always run in the same sequence); only the
    ``seconds`` values vary run to run — the metrics schema marks them
    as timing fields for exactly that reason.
    """

    def __init__(self) -> None:
        self.spans: List[Tuple[str, float]] = []

    def span(self, name: str):
        return _Span(self, name)

    def _record(self, name: str, seconds: float) -> None:
        self.spans.append((name, seconds))

    def merge_child(self, snapshot: Optional[dict], label: str) -> None:
        if not snapshot:
            return
        for entry in snapshot.get("spans", []):
            self.spans.append((f"{label}.{entry['name']}", entry["seconds"]))

    def seconds(self, name: str) -> float:
        """Total seconds across every span called ``name``."""
        return sum(s for n, s in self.spans if n == name)

    def iter_named(self, prefix: str) -> Iterator[Tuple[str, float]]:
        """Spans whose name starts with ``prefix``, in recorded order."""
        for name, seconds in self.spans:
            if name.startswith(prefix):
                yield name, seconds

    def snapshot(self) -> dict:
        return {
            "spans": [
                {"name": name, "seconds": seconds} for name, seconds in self.spans
            ]
        }


class CompositeRecorder(Recorder):
    """Fans every event out to several child sinks."""

    def __init__(self, children: List[Recorder]) -> None:
        self.children = [c for c in children if c.enabled]
        self.enabled = bool(self.children)

    def incr(self, name: str, value: int = 1) -> None:
        for child in self.children:
            child.incr(name, value)

    def observe(self, name: str, value: int, count: int = 1) -> None:
        for child in self.children:
            child.observe(name, value, count)

    def span(self, name: str):
        spans = [child.span(name) for child in self.children]
        return _CompositeSpan(spans)

    def merge_child(self, snapshot: Optional[dict], label: str) -> None:
        for child in self.children:
            child.merge_child(snapshot, label)

    def snapshot(self) -> dict:
        merged: dict = {}
        for child in self.children:
            merged.update(child.snapshot())
        return merged


class _CompositeSpan:
    """Enters/exits one span per child sink."""

    __slots__ = ("_spans",)

    def __init__(self, spans: list) -> None:
        self._spans = spans

    def __enter__(self) -> "_CompositeSpan":
        for span in self._spans:
            span.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        for span in reversed(self._spans):
            span.__exit__(*exc)
