"""Zero-dependency tracing/metrics for the LZW pipeline.

See :mod:`repro.observability.recorder` for the sink implementations and
:mod:`repro.observability.schema` for the versioned metrics-JSON shape
and the event-name vocabulary.
"""

from .recorder import (
    NULL_RECORDER,
    CompositeRecorder,
    CounterRecorder,
    NullRecorder,
    Recorder,
    SpanRecorder,
)
from .schema import (
    SCHEMA_VERSION,
    metrics_snapshot,
    strip_timing,
    write_metrics_json,
)

__all__ = [
    "NULL_RECORDER",
    "CompositeRecorder",
    "CounterRecorder",
    "NullRecorder",
    "Recorder",
    "SCHEMA_VERSION",
    "SpanRecorder",
    "metrics_snapshot",
    "strip_timing",
    "write_metrics_json",
]
