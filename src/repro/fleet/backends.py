"""Per-backend state: connection pool, circuit breaker, health probing.

Each ``repro serve`` process behind the dispatcher is represented by
one :class:`BackendState` owning

* a small pool of :class:`~repro.service.protocol.ServiceClient`
  connections (checked out per call, discarded on any transport error
  so a poisoned socket is never reused);
* its own :class:`~repro.service.breaker.CircuitBreaker`, fed by
  transport failures only — a backend *reply*, even a 500, proves the
  backend is alive and is relayed as a value, never counted here;
* liveness bookkeeping driven by :class:`HealthProber`.

:class:`BackendError` is the dispatcher-internal "infrastructure
failed" signal (dial refused, connection reset, no reply within the
backend timeout).  It deliberately is *not* a
:class:`~repro.reliability.errors.ReproError`: it must never leak into
a client reply — the failover loop either converts it into a retry on
another backend or into a typed ``no_backends`` 503.

:class:`HealthProber` is one daemon thread pinging every backend on a
fixed cadence.  Probe outcomes go through the same breaker the request
path uses, so the half-open single-probe rule holds fleet-wide: after
a backend's cooldown, *either* a live request *or* the prober — not
both — performs the recovery probe, and its success restores traffic.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Optional, Sequence, Tuple

from ..observability import NULL_RECORDER, Recorder
from ..observability import schema as ev
from ..reliability.errors import ProtocolError
from ..service.breaker import CircuitBreaker
from ..service.protocol import ServiceClient

__all__ = ["BackendError", "BackendState", "HealthProber"]

#: Idle pooled connections kept per backend (excess ones are closed).
_MAX_IDLE = 2

#: Request header keys the dispatcher owns and must not relay verbatim.
_HOP_FIELDS = frozenset({"op", "id", "config", "deadline_ms", "payload_len"})


class BackendError(Exception):
    """A backend failed at the transport level (dead, hung, unreachable).

    Internal to the fleet layer — converted to failover or a typed 503,
    never serialised into a reply.
    """

    def __init__(self, address: str, cause: BaseException) -> None:
        super().__init__(f"backend {address} failed: {cause}")
        self.address = address
        self.cause = cause


class BackendState:
    """One backend's address, breaker and pooled connections."""

    def __init__(
        self,
        address: str,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 2.0,
        timeout: float = 30.0,
        connect_timeout: float = 5.0,
    ) -> None:
        self.address = address
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.breaker = CircuitBreaker(breaker_threshold, breaker_cooldown)
        self._idle: Deque[ServiceClient] = deque()
        self._lock = threading.Lock()

    # -- connection pool ----------------------------------------------

    def _checkout(self) -> ServiceClient:
        with self._lock:
            if self._idle:
                return self._idle.popleft()
        return ServiceClient(
            self.address,
            timeout=self.connect_timeout,
            reply_timeout=self.timeout,
        )

    def _checkin(self, client: ServiceClient) -> None:
        with self._lock:
            if len(self._idle) < _MAX_IDLE:
                self._idle.append(client)
                return
        client.close()

    def close(self) -> None:
        """Close every idle pooled connection (drain path)."""
        with self._lock:
            idle, self._idle = list(self._idle), deque()
        for client in idle:
            client.close()

    # -- calls ---------------------------------------------------------

    def call(
        self,
        header: Dict[str, Any],
        payload: bytes,
        deadline_ms: Optional[int] = None,
        reply_timeout: Optional[float] = None,
    ) -> Tuple[Dict[str, Any], bytes]:
        """Relay one request; raises :class:`BackendError` on transport
        failure, returns the backend's reply (including error replies)
        otherwise.  ``reply_timeout`` tightens this call's wait below
        the pool default (e.g. to the request's remaining deadline).
        """
        fields = {
            key: value for key, value in header.items() if key not in _HOP_FIELDS
        }
        try:
            client = self._checkout()
        except (ProtocolError, OSError) as exc:
            raise BackendError(self.address, exc) from exc
        client.reply_timeout = (
            self.timeout if reply_timeout is None else min(self.timeout, reply_timeout)
        )
        try:
            reply = client.request(
                header["op"],
                payload,
                config=header.get("config"),
                deadline_ms=deadline_ms,
                **fields,
            )
        except (ProtocolError, OSError) as exc:
            client.close()
            raise BackendError(self.address, exc) from exc
        self._checkin(client)
        return reply

    def probe(self, timeout: float) -> bool:
        """One liveness ping on a dedicated short-lived connection."""
        try:
            client = ServiceClient(
                self.address, timeout=timeout, reply_timeout=timeout
            )
        except (ProtocolError, OSError):
            return False
        try:
            header = client.ping()
            return bool(header.get("ok"))
        except (ProtocolError, OSError):
            return False
        finally:
            client.close()


class HealthProber(threading.Thread):
    """Daemon thread feeding probe outcomes into the backends' breakers."""

    def __init__(
        self,
        backends: Sequence[BackendState],
        interval: float = 1.0,
        timeout: float = 2.0,
        recorder: Optional[Recorder] = None,
    ) -> None:
        super().__init__(name="repro-fleet-prober", daemon=True)
        self.backends = list(backends)
        self.interval = interval
        self.timeout = timeout
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        # NB: must not be called _stop -- that would shadow an internal
        # threading.Thread method and break join()/is_alive().
        self._stopping = threading.Event()

    def stop(self) -> None:
        self._stopping.set()

    def run(self) -> None:
        while not self._stopping.wait(self.interval):
            for backend in self.backends:
                if self._stopping.is_set():
                    return
                self._probe_one(backend)

    def _probe_one(self, backend: BackendState) -> None:
        # allow() both respects the open-state cooldown and claims the
        # single half-open probe slot; if a live request claimed it
        # first, this cycle simply skips the backend.
        if not backend.breaker.allow():
            return
        if backend.probe(self.timeout):
            backend.breaker.record_success()
        else:
            backend.breaker.record_failure()
            if self.recorder.enabled:
                self.recorder.incr(ev.FLEET_PROBE_FAILURES)
