"""Dispatcher tier: one front door across N ``repro serve`` backends.

``repro serve`` (PR 5) hardened a single process; this package makes
the service survive the process itself dying.  A
:class:`~repro.fleet.dispatcher.FleetDispatcher` speaks the exact same
NDJSON/framed protocol to clients and routes each request across a
fleet of independent backends:

* :mod:`~repro.fleet.router` — workload fingerprints + rendezvous
  hashing (stable placement, 1/N disruption on membership change);
* :mod:`~repro.fleet.backends` — per-backend connection pools and
  circuit breakers, plus the health-probe thread;
* :mod:`~repro.fleet.cache` — the content-addressed, CRC-verified
  result cache (atomic writes; corrupt entries are misses, never
  served);
* :mod:`~repro.fleet.dispatcher` — admission + routing + failover +
  hedging, reusing the whole service envelope by subclassing
  :class:`~repro.service.server.CompressionServer`;
* :mod:`~repro.fleet.procs` — backend subprocess management (spawn,
  drain, and the kill/pause fault hooks);
* :mod:`~repro.fleet.chaos` — the oracle-checked chaos campaign over
  :data:`~repro.reliability.chaos.FLEET_FAULTS`.

Import layering: fleet sits on top of service, reliability and
observability; nothing below imports it.
"""

from .backends import BackendError, BackendState, HealthProber
from .cache import ResultCache
from .dispatcher import FleetConfig, FleetDispatcher
from .procs import BackendProcess, spawn_backend, stop_backend
from .router import rank_backends, workload_fingerprint

__all__ = [
    "BackendError",
    "BackendProcess",
    "BackendState",
    "FleetConfig",
    "FleetDispatcher",
    "HealthProber",
    "ResultCache",
    "rank_backends",
    "spawn_backend",
    "stop_backend",
    "workload_fingerprint",
]
