"""Content-addressed, integrity-verified cache of compressed containers.

Regression-test traffic repeats itself: the same cube sets get
compressed with the same configs over and over.  The cache turns those
repeats into zero-encode-cost replays — *iff* a hit can be trusted.
The durability story is therefore the whole design:

* **keying** — entries are addressed by the request's workload
  fingerprint (op + canonical config + payload bytes, see
  :func:`~repro.fleet.router.workload_fingerprint`), so a hit is by
  construction the answer to this exact request;
* **writes** — every entry goes through
  :func:`~repro.reliability.atomic.atomic_write_bytes` (tmp + fsync +
  rename), so a crash mid-write leaves no torn entry to find later;
* **reads** — every hit is re-verified before replay: the entry's own
  CRC over the stored container, then the container's header + payload
  CRCs (and, with ``deep_verify``, a full decode against the stored
  stream digest).  A failed check unlinks the entry, bumps
  ``fleet.cache_corrupt`` and reports a miss — corrupt bytes are
  *never* served;
* **bounding** — the entry count is capped; the oldest entries (mtime)
  are evicted after each write.

An entry file is one JSON metadata line (reply fields + container CRC)
followed by the raw container bytes.  Only ``compress`` results are
cached: they are deterministic pure functions of the fingerprint, and
they are the expensive op the fleet exists to absorb.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..container import load_bytes
from ..observability import NULL_RECORDER, Recorder
from ..observability import schema as ev
from ..reliability.atomic import atomic_write_bytes
from ..reliability.errors import ContainerError, ReproError

__all__ = ["ResultCache"]

#: Entry filename suffix (anything else in the tree is ignored).
_SUFFIX = ".entry"


class ResultCache:
    """Bounded on-disk cache of ``(reply fields, container bytes)``.

    Thread-safe; every public method tolerates a concurrently-mutated
    directory (entries vanishing underneath it are treated as misses,
    never as errors).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        max_entries: int = 1024,
        recorder: Optional[Recorder] = None,
        deep_verify: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.max_entries = max(1, int(max_entries))
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.deep_verify = deep_verify
        self._lock = threading.Lock()
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path_for(self, fingerprint: str) -> Path:
        # Two-level fan-out keeps any one directory small.
        return self.directory / fingerprint[:2] / f"{fingerprint}{_SUFFIX}"

    # -- reads ---------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[Tuple[Dict[str, Any], bytes]]:
        """A verified ``(fields, container)`` hit, or ``None`` (miss).

        Any integrity failure — torn metadata, CRC mismatch, container
        that no longer parses — quarantines the entry (unlink + the
        ``fleet.cache_corrupt`` counter) and reports a miss.
        """
        path = self._path_for(fingerprint)
        try:
            data = path.read_bytes()
        except (FileNotFoundError, OSError):
            return None
        entry = self._verify(fingerprint, data)
        if entry is None:
            self._quarantine(path)
            return None
        try:
            os.utime(path)  # LRU-ish: refresh the eviction clock on hits
        except OSError:
            pass
        return entry

    def _verify(
        self, fingerprint: str, data: bytes
    ) -> Optional[Tuple[Dict[str, Any], bytes]]:
        newline = data.find(b"\n")
        if newline < 0:
            return None
        try:
            meta = json.loads(data[:newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(meta, dict) or meta.get("fingerprint") != fingerprint:
            return None
        container = data[newline + 1 :]
        if meta.get("crc") != zlib.crc32(container):
            return None
        fields = meta.get("fields")
        if not isinstance(fields, dict):
            return None
        try:
            # verify=False still checks the header and payload CRCs;
            # deep_verify additionally decodes the stream and checks
            # the stored digest (catches CRC-preserving tampering).
            load_bytes(container, verify=self.deep_verify)
        except (ContainerError, ReproError, ValueError):
            return None
        return fields, container

    def _quarantine(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        if self.recorder.enabled:
            self.recorder.incr(ev.FLEET_CACHE_CORRUPT)

    # -- scrubbing -----------------------------------------------------

    def scrub(self, repair: bool = False) -> Dict[str, int]:
        """Sweep every entry through the read-side verifier.

        The background-scrubber entry point behind ``repro fsck
        --scrub``: bit rot is found *now*, on the operator's schedule,
        instead of at the next unlucky ``get``.  Corrupt entries bump
        ``fleet.cache_corrupt`` and — with ``repair`` — are moved aside
        to ``<entry>.quarantine`` (kept for forensics, invisible to
        ``get``); without ``repair`` they are only counted, so a
        dry-run scrub never mutates the cache.  Stale ``*.tmp.*``
        leftovers from crashed writers are swept the same way.

        Returns counters: ``scanned`` / ``clean`` / ``corrupt`` /
        ``quarantined`` / ``stale_tmp``.
        """
        stats = {
            "scanned": 0,
            "clean": 0,
            "corrupt": 0,
            "quarantined": 0,
            "stale_tmp": 0,
        }
        for path in sorted(self._entries()):
            stats["scanned"] += 1
            fingerprint = path.name[: -len(_SUFFIX)]
            try:
                data = path.read_bytes()
            except OSError:
                continue  # vanished underneath us: not corruption
            if self._verify(fingerprint, data) is not None:
                stats["clean"] += 1
                continue
            stats["corrupt"] += 1
            if self.recorder.enabled:
                self.recorder.incr(ev.FLEET_CACHE_CORRUPT)
            if repair:
                try:
                    os.replace(path, path.with_name(path.name + ".quarantine"))
                    stats["quarantined"] += 1
                except OSError:
                    pass
        try:
            tmp_files = [
                path
                for path in self.directory.glob("*/*.tmp.*")
                if path.is_file()
            ]
        except OSError:
            tmp_files = []
        for path in sorted(tmp_files):
            stats["stale_tmp"] += 1
            if repair:
                try:
                    path.unlink()
                except OSError:
                    pass
        return stats

    # -- writes --------------------------------------------------------

    def put(self, fingerprint: str, fields: Dict[str, Any], container: bytes) -> None:
        """Store one result; failures are silent (the cache is advisory)."""
        meta = {
            "fingerprint": fingerprint,
            "crc": zlib.crc32(container),
            "fields": {
                key: value
                for key, value in fields.items()
                if key not in ("id", "ok", "code", "payload_len")
            },
        }
        line = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode("utf-8")
        path = self._path_for(fingerprint)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(path, line + b"\n" + container)
        except (ContainerError, OSError):
            return  # full/readonly disk: the backend result still flows
        self._evict()

    def _entries(self):
        try:
            return [
                path
                for path in self.directory.glob(f"*/*{_SUFFIX}")
                if path.is_file()
            ]
        except OSError:
            return []

    def _evict(self) -> None:
        """Drop oldest entries until the count bound holds again."""
        with self._lock:
            entries = self._entries()
            excess = len(entries) - self.max_entries
            if excess <= 0:
                return

            def mtime(path: Path) -> float:
                try:
                    return path.stat().st_mtime
                except OSError:
                    return 0.0

            entries.sort(key=mtime)
            evicted = 0
            for path in entries[:excess]:
                try:
                    path.unlink()
                    evicted += 1
                except OSError:
                    pass
            if evicted and self.recorder.enabled:
                self.recorder.incr(ev.FLEET_CACHE_EVICTIONS, evicted)

    def __len__(self) -> int:
        return len(self._entries())
