"""Backend subprocess management for the fleet.

Shared by the ``repro fleet --spawn N`` convenience mode, the fleet
chaos harness and the soak benchmark: start real ``repro serve``
processes, parse their readiness banner for the bound address, and stop
them with the same drain contract the service tests enforce (SIGTERM →
exit 0 within the grace budget).

Fault injection hooks (used by :mod:`repro.fleet.chaos`):

* :meth:`BackendProcess.kill` — SIGKILL, the crashed-backend fault;
* :meth:`BackendProcess.pause` / :meth:`BackendProcess.resume` —
  SIGSTOP / SIGCONT, the hung-backend fault (the process keeps its
  sockets but stops answering, which is what distinguishes *hung* from
  *dead* at the dispatcher).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

__all__ = ["BackendProcess", "spawn_backend", "stop_backend"]

#: Seconds a draining backend gets before we call it hung.
DRAIN_TIMEOUT = 20.0


class BackendProcess:
    """One spawned ``repro serve`` child and its bound address."""

    def __init__(
        self, proc: subprocess.Popen, address: str, metrics_path: Optional[str]
    ) -> None:
        self.proc = proc
        self.address = address
        self.metrics_path = metrics_path
        self.paused = False

    @property
    def pid(self) -> int:
        return self.proc.pid

    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL: the backend vanishes without any goodbye."""
        try:
            self.proc.kill()
        except OSError:
            pass
        self.proc.wait()

    def pause(self) -> None:
        """SIGSTOP: sockets stay open, nothing gets answered."""
        os.kill(self.proc.pid, signal.SIGSTOP)
        self.paused = True

    def resume(self) -> None:
        """SIGCONT after :meth:`pause` (cleanup path of the hang fault)."""
        if self.paused and self.alive():
            try:
                os.kill(self.proc.pid, signal.SIGCONT)
            except OSError:
                pass
        self.paused = False


def _child_env() -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def spawn_backend(
    args: Sequence[str] = (),
    metrics_json: Optional[str] = None,
    python: str = sys.executable,
) -> BackendProcess:
    """Start one ``repro serve`` child; returns it with its address.

    ``args`` are extra CLI flags (``--port 0`` is the default, so each
    backend binds an ephemeral port).  Raises ``RuntimeError`` with the
    child's first output line if the readiness banner never appears.
    """
    command: List[str] = [python, "-m", "repro.cli", "serve", "--port", "0"]
    if metrics_json:
        command += ["--metrics-json", str(metrics_json)]
    command += list(args)
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_child_env(),
    )
    banner = proc.stdout.readline()
    if "serving on" not in banner:
        proc.kill()
        proc.wait()
        raise RuntimeError(f"backend failed to start: {banner!r}")
    return BackendProcess(proc, banner.split()[2], metrics_json)


def stop_backend(
    backend: BackendProcess, timeout: float = DRAIN_TIMEOUT
) -> Optional[int]:
    """SIGTERM and wait for the drain; returns the exit code.

    ``None`` means the backend failed to exit within ``timeout`` and
    was killed — callers treat that as a drain-contract violation.
    """
    backend.resume()  # a paused process cannot handle SIGTERM
    if not backend.alive():
        return backend.proc.returncode
    backend.proc.send_signal(signal.SIGTERM)
    try:
        backend.proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        backend.kill()
        return None
    return backend.proc.returncode
