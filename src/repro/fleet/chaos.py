"""Fleet chaos campaign: faults at the dispatcher tier, oracle-checked.

Each trial runs one :class:`~repro.reliability.chaos.FleetFaultPlan`
against a real fleet — three ``repro serve`` subprocesses behind an
in-process :class:`~repro.fleet.dispatcher.FleetDispatcher` — and
classifies **every** request's outcome against the serial oracle
(:func:`repro.core.compress` on the same input):

``correct``
    an ``ok`` reply whose container is byte-identical to the oracle's;
``typed_error``
    a structured error reply with a documented code (408/429/500/503) —
    honest shedding under the injected fault;
``silent_corruption``
    an ``ok`` reply whose bytes differ from the oracle — the one
    outcome the whole robustness stack exists to make impossible;
``untyped``
    anything else (hang, unstructured reply, unexpected code).

The campaign passes only when every trial reports **zero**
``silent_corruption`` and zero ``untyped`` outcomes, across every
fault class and seed.

Fault implementations (the plan decides *when/who*, this module acts):

* ``backend_kill`` — SIGKILL the target backend mid-run;
* ``backend_hang`` — SIGSTOP it (sockets stay open, nothing answers);
* ``backend_partition`` — the target backend sits behind a
  :class:`ChaosProxy`; the fault cuts it, so established connections
  die and new ones are accepted-then-dropped;
* ``cache_tamper`` — the trial sends *repeated* payloads to populate
  the result cache, then flips one byte of an entry on disk; the
  verified-read path must turn that into a miss (``fleet.cache_corrupt``)
  and re-fetch, never replay the damage.
"""

from __future__ import annotations

import socket
import threading
import random
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..container import dump_bytes
from ..core import LZWConfig, compress
from ..observability import schema as ev
from ..reliability.chaos import FLEET_FAULTS, FleetFaultPlan
from ..reliability.errors import ProtocolError
from ..service.protocol import ServiceClient
from ..testfile import parse_test_text
from .cache import _SUFFIX
from .dispatcher import FleetConfig, FleetDispatcher
from .procs import BackendProcess, spawn_backend, stop_backend

__all__ = ["ChaosProxy", "run_trial", "run_campaign"]

#: Reply codes an honest fleet may give a well-formed request.
EXPECTED_CODES = frozenset({0, 408, 429, 500, 503})

#: Backend tuning for trials: fast drain, fast breaker, debug ops off.
BACKEND_ARGS = (
    "--workers", "2",
    "--queue-depth", "8",
    "--drain-grace", "3.0",
    "--breaker-threshold", "3",
    "--breaker-cooldown", "0.5",
)


class ChaosProxy(threading.Thread):
    """TCP forwarder with a kill switch, modelling a network partition.

    Until :meth:`cut`, bytes flow both ways transparently.  After it,
    every established connection is torn down and new connections are
    accepted and immediately closed — the "dropped sockets" flavour of
    partition, which a dispatcher sees as connect-then-EOF rather than
    connection-refused.
    """

    def __init__(self, upstream: str) -> None:
        super().__init__(name="repro-chaos-proxy", daemon=True)
        host, _, port = upstream.rpartition(":")
        self.upstream = (host, int(port))
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(32)
        self.listener.settimeout(0.2)
        self.address = "%s:%d" % self.listener.getsockname()[:2]
        self._cut = threading.Event()
        # _stop would shadow threading.Thread internals; see HealthProber.
        self._closing = threading.Event()
        self._active: List[socket.socket] = []
        self._lock = threading.Lock()

    def cut(self) -> None:
        """Partition: drop every live connection, refuse service."""
        self._cut.set()
        with self._lock:
            active, self._active = list(self._active), []
        for sock in active:
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        self._closing.set()
        self.cut()
        try:
            self.listener.close()
        except OSError:
            pass

    def run(self) -> None:
        while not self._closing.is_set():
            try:
                client, _ = self.listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            if self._cut.is_set():
                client.close()  # accepted, then dropped: the partition
                continue
            try:
                upstream = socket.create_connection(self.upstream, timeout=2.0)
            except OSError:
                client.close()
                continue
            with self._lock:
                self._active += [client, upstream]
            for source, sink in ((client, upstream), (upstream, client)):
                threading.Thread(
                    target=self._pump, args=(source, sink), daemon=True
                ).start()

    def _pump(self, source: socket.socket, sink: socket.socket) -> None:
        try:
            while True:
                chunk = source.recv(65536)
                if not chunk:
                    break
                sink.sendall(chunk)
        except OSError:
            pass
        for sock in (source, sink):
            try:
                sock.close()
            except OSError:
                pass


def _trial_texts(plan: FleetFaultPlan) -> List[str]:
    """Deterministic cube texts for one trial.

    ``cache_tamper`` repeats one text (the cache must fill and then
    survive the tampering); every other fault gets unique texts so each
    request exercises routing rather than the cache.
    """
    def text_for(tag) -> str:
        rng = random.Random(f"fleet-trial:{plan.fault}:{plan.seed}:{tag}")
        rows = [
            "".join(rng.choice("01X") for _ in range(8)) for _ in range(6)
        ]
        return "\n".join(rows) + "\n"

    if plan.fault == "cache_tamper":
        return [text_for("repeat")] * plan.requests
    return [text_for(i) for i in range(plan.requests)]


def _oracle(text: str) -> bytes:
    result = compress(parse_test_text(text).to_stream(), LZWConfig())
    return dump_bytes(result.compressed, result.assigned_stream)


def _classify(header: Dict, payload: bytes, expected: bytes) -> str:
    if header.get("ok"):
        return "correct" if payload == expected else "silent_corruption"
    error = header.get("error")
    if isinstance(error, dict) and "type" in error and (
        header.get("code") in EXPECTED_CODES
    ):
        return "typed_error"
    return "untyped"


def _tamper_cache(cache_dir: Path, plan: FleetFaultPlan) -> bool:
    """Flip one byte of one cache entry; False if there is none yet."""
    entries = sorted(cache_dir.glob(f"*/*{_SUFFIX}"))
    if not entries:
        return False
    target = entries[plan.target_backend % len(entries)]
    data = target.read_bytes()
    target.write_bytes(plan.tamper(data))
    return True


def run_trial(plan: FleetFaultPlan, work_dir: Path) -> Dict:
    """One fault, one seed, one fresh fleet; returns the trial report."""
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    cache_dir = work_dir / "cache"
    backends: List[BackendProcess] = []
    proxy: Optional[ChaosProxy] = None
    dispatcher: Optional[FleetDispatcher] = None
    outcomes = {"correct": 0, "typed_error": 0, "silent_corruption": 0, "untyped": 0}
    notes: List[str] = []
    try:
        for _ in range(plan.backends):
            backends.append(spawn_backend(BACKEND_ARGS))
        addresses = [backend.address for backend in backends]
        target = plan.target_backend % len(backends)
        if plan.fault == "backend_partition":
            proxy = ChaosProxy(addresses[target])
            proxy.start()
            addresses[target] = proxy.address
        config = FleetConfig(
            port=0,
            workers=2,
            queue_depth=16,
            backends=tuple(addresses),
            probe_interval=0.25,
            probe_timeout=0.5,
            backend_timeout=2.0,
            backend_connect_timeout=1.0,
            failover_attempts=2,
            backend_breaker_threshold=2,
            backend_breaker_cooldown=0.5,
            cache_dir=str(cache_dir),
            default_deadline=20.0,
        )
        dispatcher = FleetDispatcher(config)
        dispatcher.start()
        texts = _trial_texts(plan)
        expected = {text: _oracle(text) for text in set(texts)}
        client = ServiceClient(dispatcher.address, timeout=30.0)
        try:
            for index, text in enumerate(texts):
                if index == plan.trigger_index:
                    if plan.fault == "backend_kill":
                        backends[target].kill()
                    elif plan.fault == "backend_hang":
                        backends[target].pause()
                    elif plan.fault == "backend_partition":
                        proxy.cut()
                    else:  # cache_tamper
                        if not _tamper_cache(cache_dir, plan):
                            notes.append("no cache entry to tamper")
                try:
                    header, payload = client.compress(text, deadline_ms=15000)
                except (ProtocolError, OSError) as exc:
                    outcomes["untyped"] += 1
                    notes.append(f"request {index}: transport failure: {exc}")
                    client.close()
                    client = ServiceClient(dispatcher.address, timeout=30.0)
                    continue
                outcomes[_classify(header, payload, expected[text])] += 1
        finally:
            client.close()
        counters = dispatcher.recorder.snapshot().get("counters", {})
    finally:
        if dispatcher is not None:
            dispatcher.request_drain()
            dispatcher.drain()
        if proxy is not None:
            proxy.close()
        for backend in backends:
            backend.resume()
            if backend.alive():
                stop_backend(backend, timeout=10.0)
            else:
                backend.kill()
    if plan.fault == "cache_tamper" and not counters.get(ev.FLEET_CACHE_CORRUPT):
        notes.append("tampered entry was never detected as corrupt")
    report = {
        "fault": plan.fault,
        "seed": plan.seed,
        "requests": plan.requests,
        "trigger_index": plan.trigger_index,
        "target_backend": plan.target_backend % plan.backends,
        "outcomes": outcomes,
        "notes": notes,
        "counters": {
            name: value
            for name, value in sorted(counters.items())
            if name.startswith("fleet.")
        },
        "ok": (
            outcomes["silent_corruption"] == 0
            and outcomes["untyped"] == 0
            and not notes
        ),
    }
    return report


def run_campaign(
    seeds: Sequence[int],
    work_dir: Path,
    faults: Sequence[str] = FLEET_FAULTS,
    requests: int = 24,
) -> Dict:
    """The full fault × seed matrix; aggregates per-trial reports."""
    trials = []
    for fault in faults:
        for seed in seeds:
            plan = FleetFaultPlan(fault, seed=seed, requests=requests)
            trial_dir = Path(work_dir) / f"{fault}-{seed}"
            trials.append(run_trial(plan, trial_dir))
    totals = {"correct": 0, "typed_error": 0, "silent_corruption": 0, "untyped": 0}
    for trial in trials:
        for key in totals:
            totals[key] += trial["outcomes"][key]
    return {
        "trials": trials,
        "totals": totals,
        "ok": all(trial["ok"] for trial in trials),
    }
