"""Consistent request routing: workload fingerprints + rendezvous hashing.

The dispatcher's placement problem has two requirements pulling the
same way:

* **cache effectiveness** — identical requests (same cube text, same
  LZW config) should land on the same backend so its hot dictionaries
  and the shared result cache see the repeats;
* **stability under membership change** — when one of N backends dies,
  only the keys that lived on it should move; everything else keeps its
  backend (and its warmth).

Rendezvous (highest-random-weight) hashing gives both with no ring
state to maintain: every request's fingerprint scores each backend with
``sha256(fingerprint ":" backend)`` and the backends are tried in
descending score order.  Removing a backend only reassigns the keys
that ranked it first — the classic 1/N disruption bound — and the
ranked order doubles as the dispatcher's failover order, so retries are
deterministic too.

The fingerprint itself is a SHA-256 over (op, canonicalised config,
payload).  It is computed on the *request* bytes, not the result, so a
cache lookup can happen before any backend is touched.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Sequence, Tuple

__all__ = ["workload_fingerprint", "rank_backends"]


def workload_fingerprint(
    op: str,
    config: Optional[Dict[str, Any]],
    payload: bytes,
    seed: Optional[str] = None,
    codes_per_frame: Optional[int] = None,
) -> str:
    """Stable hex digest identifying one unit of routable work.

    Two requests get the same fingerprint iff they would produce the
    same reply on a correct backend: same op, semantically identical
    ``config`` (key order normalised), same payload bytes, same warm
    dictionary ``seed`` (the request's base64 snapshot field, or
    ``None`` for a cold compress — the emitted codes depend on the
    seed, so a cold and a warm compress of identical cubes must never
    share a cache entry), and — for ``compress_stream`` — the same
    ``codes_per_frame``, which changes the v5 container's framing
    bytes.  Two knobs are normalised *out* because they provably do not
    change the reply: ``engine`` (both engines are byte-identical,
    locked by the differential conformance suite) and the streaming
    ``chunk_bytes`` (the incremental encoder emits identical codes for
    any chunking of the same input, locked by the chunk-boundary
    suite), so requests differing only there share routing and cache.
    """
    if config and "engine" in config:
        config = {k: v for k, v in config.items() if k != "engine"}
    canonical_config = json.dumps(
        config or {}, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    digest = hashlib.sha256()
    digest.update(op.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(canonical_config)
    digest.update(b"\x00")
    if seed is not None:
        digest.update(seed.encode("ascii", "replace"))
    digest.update(b"\x00")
    if codes_per_frame is not None:
        digest.update(str(codes_per_frame).encode("ascii"))
    digest.update(b"\x00")
    digest.update(payload)
    return digest.hexdigest()


def rank_backends(fingerprint: str, backends: Sequence[str]) -> Tuple[str, ...]:
    """Backends in rendezvous order for ``fingerprint`` (best first).

    Deterministic for a given (fingerprint, backend set); ties — only
    possible with duplicate addresses — fall back to address order so
    the result is still total.
    """

    def score(address: str) -> Tuple[bytes, str]:
        weight = hashlib.sha256(
            f"{fingerprint}:{address}".encode("utf-8")
        ).digest()
        return (weight, address)

    return tuple(sorted(backends, key=score, reverse=True))
