"""The fleet dispatcher: ``repro serve``'s front door across N backends.

:class:`FleetDispatcher` subclasses
:class:`~repro.service.server.CompressionServer` and keeps its entire
admission envelope — wire protocol, bounded queue, rate limiter,
deadlines, graceful drain — swapping only the execution model behind
:meth:`~repro.service.server.CompressionServer._execute_job`: instead
of running a local worker pool, a job is

1. **fingerprinted** (op + canonical config + payload) and, for
   ``compress``, looked up in the verified
   :class:`~repro.fleet.cache.ResultCache` — a hit replays the stored
   container without touching any backend;
2. **routed** over the backends in rendezvous order for that
   fingerprint, skipping every backend whose circuit breaker is not
   admitting traffic;
3. **relayed** with the request's remaining deadline; transport
   failures (dead, hung, unreachable backend) trip that backend's
   breaker and fail over to the next ranked backend within a bounded
   retry budget — backend *replies* are values: 4xx/5xx error replies
   are reconstructed as their typed exceptions and relayed verbatim,
   never retried;
4. optionally **hedged**: when the primary has not replied within
   ``hedge_after_ms``, a second identical request is launched on the
   next healthy backend and the first reply wins (the loser completes
   harmlessly on its own connection).

When every backend is skipped or exhausted the client gets a typed
``no_backends`` 503 with a ``retry_after_ms`` hint — never a hang and
never a silent drop, matching the single-server shed contract.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from ..observability import Recorder
from ..observability import schema as ev
from ..reliability.errors import ConfigError, OverloadError
from ..service.protocol import error_from_reply
from ..service.server import CompressionServer, ServiceConfig, _Job
from .backends import BackendError, BackendState, HealthProber
from .cache import ResultCache
from .router import rank_backends, workload_fingerprint

__all__ = ["FleetConfig", "FleetDispatcher"]

#: Backend reply header keys that are transport framing, not result
#: fields, and must not be re-sent to the dispatcher's client.
_REPLY_FRAMING = frozenset({"id", "ok", "code", "payload_len", "error"})


@dataclass(frozen=True)
class FleetConfig(ServiceConfig):
    """Dispatcher tunables on top of the inherited service envelope.

    The inherited worker/breaker knobs keep their meaning: ``workers``
    is the number of concurrent relay threads, and the inherited
    per-server breaker fields are reused as the *per-backend* breaker
    configuration via ``backend_breaker_*`` defaults below.
    """

    backends: Tuple[str, ...] = ()
    probe_interval: float = 1.0
    probe_timeout: float = 2.0
    backend_timeout: float = 30.0
    backend_connect_timeout: float = 5.0
    failover_attempts: int = 2
    hedge_after_ms: Optional[float] = None
    backend_breaker_threshold: int = 3
    backend_breaker_cooldown: float = 2.0
    cache_dir: Optional[str] = None
    cache_entries: int = 1024
    cache_deep_verify: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.backends:
            raise ConfigError(
                "a fleet needs at least one backend", field="backends", value=()
            )
        if len(set(self.backends)) != len(self.backends):
            raise ConfigError(
                "backend addresses must be unique",
                field="backends",
                value=",".join(self.backends),
            )
        if self.failover_attempts < 0:
            raise ConfigError(
                "failover_attempts must be >= 0",
                field="failover_attempts",
                value=self.failover_attempts,
            )
        for name in (
            "probe_interval",
            "probe_timeout",
            "backend_timeout",
            "backend_connect_timeout",
            "backend_breaker_cooldown",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(
                    f"{name} must be positive", field=name, value=getattr(self, name)
                )
        if self.hedge_after_ms is not None and self.hedge_after_ms <= 0:
            raise ConfigError(
                "hedge_after_ms must be positive",
                field="hedge_after_ms",
                value=self.hedge_after_ms,
            )
        if self.backend_breaker_threshold < 1:
            raise ConfigError(
                "backend_breaker_threshold must be >= 1",
                field="backend_breaker_threshold",
                value=self.backend_breaker_threshold,
            )
        if self.cache_entries < 1:
            raise ConfigError(
                "cache_entries must be >= 1",
                field="cache_entries",
                value=self.cache_entries,
            )


class FleetDispatcher(CompressionServer):
    """Routes admitted jobs across backends instead of encoding locally."""

    config: FleetConfig

    def __init__(
        self, config: FleetConfig, recorder: Optional[Recorder] = None
    ) -> None:
        super().__init__(config, recorder=recorder)
        self.backends: Dict[str, BackendState] = {
            address: BackendState(
                address,
                breaker_threshold=config.backend_breaker_threshold,
                breaker_cooldown=config.backend_breaker_cooldown,
                timeout=config.backend_timeout,
                connect_timeout=config.backend_connect_timeout,
            )
            for address in config.backends
        }
        self.cache: Optional[ResultCache] = None
        if config.cache_dir:
            self.cache = ResultCache(
                config.cache_dir,
                max_entries=config.cache_entries,
                recorder=self.recorder,
                deep_verify=config.cache_deep_verify,
            )
        self.prober = HealthProber(
            list(self.backends.values()),
            interval=config.probe_interval,
            timeout=config.probe_timeout,
            recorder=self.recorder,
        )

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        super().start()
        self.prober.start()

    def drain(self) -> int:
        self.prober.stop()
        code = super().drain()
        for backend in self.backends.values():
            backend.close()
        return code

    # -- inline ops ----------------------------------------------------

    def _reply_inline(self, connection, op: str, request_id: Any) -> None:
        if op == "ping":
            from ..service.protocol import ok_reply

            connection.reply(
                ok_reply(
                    request_id,
                    state=self.state,
                    queue_depth=self.queue.depth,
                    breaker=self.breaker.state,
                    backends={
                        address: backend.breaker.state
                        for address, backend in self.backends.items()
                    },
                )
            )
            return
        super()._reply_inline(connection, op, request_id)

    # -- execution -----------------------------------------------------

    def _execute_job(self, job: _Job) -> Tuple[Dict[str, Any], bytes]:
        rec = self.recorder
        routing_started = time.monotonic()
        # Streaming-aware: codes_per_frame changes the v5 framing bytes
        # so it routes distinctly (an omitted field is the documented
        # default — same reply, same fingerprint); chunk_bytes does not
        # change the reply and stays out of the fingerprint.
        codes_per_frame = None
        if job.op == "compress_stream":
            from ..streamio import DEFAULT_CODES_PER_FRAME

            raw = job.header.get("codes_per_frame")
            codes_per_frame = raw if isinstance(raw, int) else DEFAULT_CODES_PER_FRAME
        fingerprint = workload_fingerprint(
            job.op,
            job.header.get("config"),
            job.payload,
            seed=job.header.get("seed"),
            codes_per_frame=codes_per_frame,
        )
        cacheable = self.cache is not None and job.op == "compress"
        if cacheable:
            hit = self.cache.get(fingerprint)
            if hit is not None:
                fields, container = hit
                if rec.enabled:
                    rec.incr(ev.FLEET_REQUESTS)
                    rec.incr(ev.FLEET_CACHE_HITS)
                    rec.observe(
                        ev.HIST_ROUTING_LATENCY_MS,
                        int((time.monotonic() - routing_started) * 1000),
                    )
                return dict(fields, cache="hit"), container
            if rec.enabled:
                rec.incr(ev.FLEET_CACHE_MISSES)
        ranked = rank_backends(fingerprint, tuple(self.backends))
        if rec.enabled:
            rec.incr(ev.FLEET_REQUESTS)
            rec.observe(
                ev.HIST_ROUTING_LATENCY_MS,
                int((time.monotonic() - routing_started) * 1000),
            )
        header, payload = self._route(job, ranked)
        if not header.get("ok"):
            raise error_from_reply(header)  # relay the typed value as-is
        fields = {
            key: value
            for key, value in header.items()
            if key not in _REPLY_FRAMING
        }
        if cacheable:
            self.cache.put(fingerprint, fields, payload)
        return fields, payload

    def _route(
        self, job: _Job, ranked: Sequence[str]
    ) -> Tuple[Dict[str, Any], bytes]:
        """Failover loop: ranked, breaker-gated, bounded retries."""
        rec = self.recorder
        attempts_left = self.config.failover_attempts + 1
        attempted = 0
        for address in ranked:
            if attempts_left <= 0:
                break
            backend = self.backends[address]
            if not backend.breaker.allow():
                continue
            attempts_left -= 1
            attempted += 1
            try:
                if attempted == 1 and self.config.hedge_after_ms is not None:
                    return self._call_hedged(job, backend, ranked)
                return self._call_one(backend, job)
            except BackendError:
                # The deadline expiring mid-call is the client's story,
                # not the backend's; surface it as a 408 immediately.
                job.token.check()
                if rec.enabled and attempts_left > 0:
                    rec.incr(ev.FLEET_FAILOVERS)
                continue
        if rec.enabled:
            rec.incr(ev.FLEET_NO_BACKENDS)
        raise OverloadError(
            "no healthy backend available",
            reason="no_backends",
            backends=len(ranked),
            attempted=attempted,
            retry_after=max(self.config.probe_interval, 0.1),
        )

    def _call_one(
        self, backend: BackendState, job: _Job
    ) -> Tuple[Dict[str, Any], bytes]:
        """One relay attempt with breaker accounting on its outcome."""
        rec = self.recorder
        remaining = job.token.remaining()
        deadline_ms = None
        reply_timeout = self.config.backend_timeout
        if remaining is not None:
            deadline_ms = max(1, int(remaining * 1000))
            # Give the backend's own 408 a moment to arrive before the
            # transport gives up on the connection.
            reply_timeout = min(reply_timeout, remaining + 1.0)
        try:
            reply = backend.call(
                job.header,
                job.payload,
                deadline_ms=deadline_ms,
                reply_timeout=reply_timeout,
            )
        except BackendError:
            backend.breaker.record_failure()
            if rec.enabled:
                rec.incr(ev.FLEET_BACKEND_ERRORS)
            raise
        backend.breaker.record_success()
        return reply

    def _next_hedge_target(
        self, ranked: Sequence[str], exclude: str
    ) -> Optional[BackendState]:
        """The hedge secondary: next ranked, *closed-breaker* backend.

        Half-open backends are deliberately skipped — a hedge must not
        consume the single recovery-probe slot a real attempt (or the
        prober) should own.
        """
        from ..service.breaker import CircuitBreaker

        for address in ranked:
            if address == exclude:
                continue
            backend = self.backends[address]
            if backend.breaker.state == CircuitBreaker.CLOSED:
                return backend
        return None

    def _call_hedged(
        self, job: _Job, primary: BackendState, ranked: Sequence[str]
    ) -> Tuple[Dict[str, Any], bytes]:
        """Primary attempt with a tail-latency hedge; first reply wins."""
        rec = self.recorder
        results: "queue.Queue" = queue.Queue()

        def attempt(backend: BackendState, is_hedge: bool) -> None:
            try:
                results.put((self._call_one(backend, job), is_hedge, None))
            except BaseException as exc:  # relayed to the caller below
                results.put((None, is_hedge, exc))

        threading.Thread(
            target=attempt,
            args=(primary, False),
            name="repro-fleet-hedge-primary",
            daemon=True,
        ).start()
        outstanding = 1
        try:
            reply, is_hedge, error = results.get(
                timeout=self.config.hedge_after_ms / 1000.0
            )
            outstanding -= 1
        except queue.Empty:
            secondary = self._next_hedge_target(ranked, exclude=primary.address)
            if secondary is not None:
                if rec.enabled:
                    rec.incr(ev.FLEET_HEDGES)
                threading.Thread(
                    target=attempt,
                    args=(secondary, True),
                    name="repro-fleet-hedge-secondary",
                    daemon=True,
                ).start()
                outstanding += 1
            reply, is_hedge, error = results.get()
            outstanding -= 1
        while error is not None and outstanding > 0:
            # The first finisher failed; the race is still live.
            reply, is_hedge, error = results.get()
            outstanding -= 1
        if error is not None:
            raise error
        if is_hedge and rec.enabled:
            rec.incr(ev.FLEET_HEDGE_WINS)
        return reply
