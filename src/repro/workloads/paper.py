"""Paper benchmark metadata (Tables 1-6 targets).

Each :class:`PaperBenchmark` records the published characteristics of
one circuit's test set — size, don't-care density, the dictionary size
the paper used — plus the paper's reported numbers for each table, used
by EXPERIMENTS.md to print paper-vs-measured.

Provenance notes
----------------
The available paper text is OCR-degraded; values below are best-effort
readings, with ``None`` where a number is unrecoverable:

* Circuit names ``s327f/s585f/s3847f`` are read as
  ``s13207f/s15850f/s38417f`` (the standard full-scan MinTest circuits
  alongside ``s9234f``/``s38584f``).
* The "Orig. Size" column is unreadable; the sizes used are the MinTest
  test-set sizes quoted throughout the contemporaneous compression
  literature (e.g. Chandra & Chakrabarty), which this paper's flow also
  used as its comparison basis.
* ITC99 set sizes are not recoverable at all and are *estimates* scaled
  to match the dictionary sizes the paper lists (``size_estimated``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "PaperBenchmark",
    "BENCHMARKS",
    "TABLE1_CIRCUITS",
    "TABLE3_CIRCUITS",
    "get_benchmark",
]


@dataclass(frozen=True)
class PaperBenchmark:
    """Published profile of one benchmark's test set."""

    name: str
    vectors: int
    width: int  # scan-chain length (bits per vector)
    x_percent: float  # Table 3 "Don't Cares"
    dict_size: int  # Table 3 "Dict. Size" (N)
    size_estimated: bool = False
    # Paper-reported results (None where the OCR is unreadable).
    paper_lzw: Optional[float] = None  # Table 1 / Table 3 compression %
    paper_lz77: Optional[float] = None  # Table 1
    paper_rle: Optional[float] = None  # Table 1
    paper_perf: Dict[int, Optional[float]] = field(default_factory=dict)  # Table 2
    paper_charsize: Dict[int, Optional[float]] = field(default_factory=dict)  # Table 4
    paper_entrysize: Dict[int, Optional[float]] = field(default_factory=dict)  # Table 5
    paper_perf_entrysize: Dict[int, Optional[float]] = field(default_factory=dict)  # T6
    paper_longest_string: Optional[int] = None  # Table 6
    # Per-benchmark generator tuning (CubeProfile field overrides) chosen
    # during calibration so the measured Table 1 row tracks the paper's.
    profile_overrides: Dict[str, object] = field(default_factory=dict)

    @property
    def total_bits(self) -> int:
        """Uncompressed test-set volume."""
        return self.vectors * self.width

    @property
    def x_density(self) -> float:
        """Don't-care fraction in [0, 1]."""
        return self.x_percent / 100.0


def _b(**kwargs) -> PaperBenchmark:
    return PaperBenchmark(**kwargs)


#: All benchmarks of Table 3, keyed by name.
BENCHMARKS: Dict[str, PaperBenchmark] = {
    bench.name: bench
    for bench in (
        _b(
            name="s13207f",
            vectors=236,
            width=700,
            x_percent=93.15,
            dict_size=1024,
            paper_lzw=80.69,
            paper_lz77=80.45,
            paper_rle=80.30,
            paper_perf={4: None, 8: 67.69, 10: 70.85},
            paper_charsize={1: 75.2, 4: 80.1, 7: 79.5, 10: 0.0},
            paper_entrysize={63: 79.5, 127: 88.2, 255: 90.56, 511: 92.53},
            paper_perf_entrysize={63: None, 127: 77.99, 255: 82.33},
            paper_longest_string=483,
        ),
        _b(
            name="s15850f",
            vectors=126,
            width=611,
            x_percent=83.56,
            dict_size=1024,
            paper_lzw=76.26,
            paper_lz77=60.90,
            paper_rle=65.83,
            paper_perf={4: None, 8: 62.79, 10: 65.70},
            paper_charsize={1: 59.98, 4: 74.57, 7: 74.78, 10: 0.0},
            paper_entrysize={63: 74.79, 127: 80.89, 255: 80.60, 511: 80.60},
            paper_perf_entrysize={63: None, 127: 70.63, 255: 70.73},
            profile_overrides={"value_consistency": 0.99, "zipf": 2.2},
        ),
        _b(
            name="s35932f",
            vectors=16,
            width=1763,
            x_percent=35.13,
            dict_size=128,
            size_estimated=True,
        ),
        _b(
            name="s38417f",
            vectors=99,
            width=1664,
            x_percent=68.08,
            dict_size=2048,
            paper_lzw=70.60,
            paper_lz77=60.56,
            paper_rle=60.55,
            paper_perf={4: None, 8: 55.46, 10: 57.99},
            paper_charsize={1: 51.58, 4: 61.85, 7: 65.54, 10: 0.0},
            paper_entrysize={63: 65.54, 127: 66.47, 255: 66.47, 511: 66.47},
            paper_perf_entrysize={63: None, 127: 56.25, 255: 56.25},
            profile_overrides={
                "value_consistency": 0.997,
                "zipf": 2.8,
                "ones_bias": 0.22,
                "pool_size": 4,
                "mutate_flip": 0.003,
            },
        ),
        _b(
            name="s38584f",
            vectors=136,
            width=1464,
            x_percent=82.28,
            dict_size=2048,
            paper_lzw=75.40,
            paper_lz77=59.97,
            paper_rle=60.30,
            paper_perf={4: None, 8: 60.83, 10: 63.80},
            paper_charsize={1: 52.30, 4: 61.50, 7: 64.80, 10: 0.0},
            paper_entrysize={63: 64.80, 127: 65.26, 255: 65.26, 511: 65.26},
            paper_perf_entrysize={63: None, 127: 55.00, 255: 55.10},
        ),
        _b(
            name="s5378f",
            vectors=111,
            width=214,
            x_percent=72.62,
            dict_size=1024,
        ),
        _b(
            name="s9234f",
            vectors=159,
            width=247,
            x_percent=73.10,
            dict_size=1024,
            paper_lzw=70.67,
            paper_lz77=37.66,
            paper_rle=44.96,
            paper_perf={4: None, 8: 57.34, 10: 59.97},
            paper_charsize={1: 54.70, 4: 67.84, 7: 69.44, 10: 0.0},
            paper_entrysize={63: 69.44, 127: 73.54, 255: 73.88, 511: 73.88},
            paper_perf_entrysize={63: None, 127: 63.34, 255: 63.63},
        ),
        _b(
            name="b14",
            vectors=420,
            width=277,
            x_percent=85.0,
            dict_size=512,
            size_estimated=True,
        ),
        _b(
            name="b15",
            vectors=60,
            width=485,
            x_percent=80.0,
            dict_size=256,
            size_estimated=True,
        ),
        _b(
            name="b17",
            vectors=130,
            width=1452,
            x_percent=82.40,
            dict_size=512,
            size_estimated=True,
        ),
        _b(
            name="b20",
            vectors=500,
            width=522,
            x_percent=92.10,
            dict_size=1024,
            size_estimated=True,
        ),
        _b(
            name="b21",
            vectors=430,
            width=522,
            x_percent=90.60,
            dict_size=512,
            size_estimated=True,
        ),
    )
}

#: Circuits of Tables 1, 2, 4, 5 and 6 (the five MinTest full-scan sets).
TABLE1_CIRCUITS: Tuple[str, ...] = (
    "s13207f",
    "s15850f",
    "s38417f",
    "s38584f",
    "s9234f",
)

#: Circuits of Table 3, paper row order.
TABLE3_CIRCUITS: Tuple[str, ...] = (
    "s13207f",
    "s15850f",
    "s35932f",
    "s38417f",
    "s38584f",
    "s5378f",
    "s9234f",
    "b14",
    "b15",
    "b17",
    "b20",
    "b21",
)


def get_benchmark(name: str) -> PaperBenchmark:
    """Look up a benchmark by name (KeyError-free, with a helpful message)."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(BENCHMARKS))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
