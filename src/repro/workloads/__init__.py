"""Workloads: paper benchmark metadata and matched synthetic test sets."""

from .cubes import CubeProfile, profile_for, synthesize
from .loader import DEFAULT_CORPUS, available_workloads, build_corpus, build_testset
from .validate import ValidationReport, validate_testset
from .paper import (
    BENCHMARKS,
    TABLE1_CIRCUITS,
    TABLE3_CIRCUITS,
    PaperBenchmark,
    get_benchmark,
)

__all__ = [
    "BENCHMARKS",
    "CubeProfile",
    "DEFAULT_CORPUS",
    "PaperBenchmark",
    "TABLE1_CIRCUITS",
    "TABLE3_CIRCUITS",
    "available_workloads",
    "ValidationReport",
    "build_corpus",
    "build_testset",
    "get_benchmark",
    "validate_testset",
    "profile_for",
    "synthesize",
]
