"""Workloads: paper benchmark metadata and matched synthetic test sets."""

from .cubes import CubeProfile, profile_for, synthesize
from .loader import available_workloads, build_testset
from .validate import ValidationReport, validate_testset
from .paper import (
    BENCHMARKS,
    TABLE1_CIRCUITS,
    TABLE3_CIRCUITS,
    PaperBenchmark,
    get_benchmark,
)

__all__ = [
    "BENCHMARKS",
    "CubeProfile",
    "PaperBenchmark",
    "TABLE1_CIRCUITS",
    "TABLE3_CIRCUITS",
    "available_workloads",
    "ValidationReport",
    "build_testset",
    "get_benchmark",
    "validate_testset",
    "profile_for",
    "synthesize",
]
