"""Workload validation: does a test set match its claimed profile?

The substitution argument of DESIGN.md §3 rests on the synthetic sets
actually matching the published statistics, so this module makes the
match checkable: :func:`validate_testset` measures a test set against a
:class:`~repro.workloads.cubes.CubeProfile` (or a benchmark name) and
returns a structured pass/fail report.  The benches and tests call it;
users bringing their own vector files can call it too, to see how far
their data is from the regime the defaults were calibrated on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from ..analysis import testset_profile
from ..circuit.scan import TestSet
from .cubes import CubeProfile
from .paper import PaperBenchmark, get_benchmark

__all__ = ["ValidationReport", "validate_testset"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one validation run."""

    name: str
    checks: Dict[str, bool]
    measured: Dict[str, float]
    expected: Dict[str, float]
    messages: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return all(self.checks.values())

    def failures(self) -> List[str]:
        """Names of failed checks."""
        return sorted(name for name, passed in self.checks.items() if not passed)


def validate_testset(
    test_set: TestSet,
    target: Union[CubeProfile, PaperBenchmark, str],
    density_tolerance: float = 0.02,
    min_adjacency: float = 0.3,
    max_conflict_fraction: float = 0.1,
) -> ValidationReport:
    """Check a test set against the profile it claims to match.

    Checks, in decreasing order of importance:

    * ``geometry`` — vector count (profiles only) and width;
    * ``x_density`` — within ``density_tolerance`` of the target;
    * ``clustering`` — care bits arrive in runs (adjacency above
      ``min_adjacency``; uniform scattering at test-set densities sits
      far below it);
    * ``similarity`` — vector pairs agree on most mutually specified
      bits (conflict rate below ``max_conflict_fraction``): the template
      structure a dictionary coder exploits.  Unrelated random vectors
      conflict on ~50% of shared care bits.
    """
    if isinstance(target, str):
        target = get_benchmark(target)
    profile = testset_profile(test_set)

    expected_width = target.width
    expected_density = (
        target.x_density if isinstance(target, (CubeProfile, PaperBenchmark)) else 0.0
    )
    checks: Dict[str, bool] = {}
    messages: List[str] = []

    geometry_ok = profile.width == expected_width
    if isinstance(target, CubeProfile):
        geometry_ok = geometry_ok and profile.vectors == target.vectors
    checks["geometry"] = geometry_ok
    if not geometry_ok:
        messages.append(
            f"geometry {profile.vectors}x{profile.width} does not match "
            f"the target width {expected_width}"
        )

    measured_density = profile.x_percent / 100.0
    checks["x_density"] = abs(measured_density - expected_density) <= density_tolerance
    if not checks["x_density"]:
        messages.append(
            f"X density {measured_density:.3f} is outside "
            f"{expected_density:.3f} +/- {density_tolerance}"
        )

    checks["clustering"] = profile.care_adjacency >= min_adjacency
    if not checks["clustering"]:
        messages.append(
            f"care adjacency {profile.care_adjacency:.2f} below "
            f"{min_adjacency} — care bits look uniformly scattered"
        )

    conflict = _conflict_fraction(test_set)
    checks["similarity"] = conflict <= max_conflict_fraction
    if not checks["similarity"]:
        messages.append(
            f"sampled vector pairs conflict on {conflict:.2f} of their "
            f"shared care bits — no template structure to exploit"
        )

    return ValidationReport(
        name=test_set.name,
        checks=checks,
        measured={
            "x_density": measured_density,
            "care_adjacency": profile.care_adjacency,
            "conflict_fraction": conflict,
        },
        expected={
            "x_density": expected_density,
            "care_adjacency": min_adjacency,
            "conflict_fraction": max_conflict_fraction,
        },
        messages=messages,
    )


def _conflict_fraction(test_set: TestSet, limit: int = 48) -> float:
    """Mean disagreement rate on mutually specified bits, sampled pairs.

    0.0 means every pair is compatible; ~0.5 means the values are
    unrelated.  Pairs with no shared care bits are skipped.
    """
    cubes = test_set.cubes[:limit]
    if len(cubes) < 2:
        return 0.0
    shared_total = 0
    conflict_total = 0
    for i in range(len(cubes)):
        for j in range(i + 1, len(cubes)):
            both = cubes[i].care_mask & cubes[j].care_mask
            if not both:
                continue
            diff = (cubes[i].value_mask ^ cubes[j].value_mask) & both
            shared_total += bin(both).count("1")
            conflict_total += bin(diff).count("1")
    if shared_total == 0:
        return 0.0
    return conflict_total / shared_total
