"""Synthetic ATPG-like test-cube generator.

The compressors only see a ternary scan stream, so reproducing the
paper's tables requires test sets with the right *statistics*: total
size, don't-care density, and — crucially for a dictionary coder — the
structure real ATPG cubes have:

* care bits arrive in **clusters** (the cone of the targeted fault maps
  to a contiguous-ish group of scan cells);
* many vectors are **near-duplicates**: related faults need similar
  justification values and static compaction packs families of similar
  cubes together — modelled with a small Zipf-popular template pool;
* a scan cell, when specified, usually takes the **same value across
  vectors** (the same logic justifies it), modelled by per-position
  preferred values with a ``value_consistency`` agreement probability.

Everything is seeded and deterministic.  The defaults were calibrated
against the paper's Table 1 (see EXPERIMENTS.md): they land the LZW
ratio within a few points of the published numbers while keeping the
LZW > LZ77/RLE ranking.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..bitstream import TernaryVector
from ..circuit.scan import TestSet

__all__ = ["CubeProfile", "synthesize", "profile_for"]


@dataclass(frozen=True)
class CubeProfile:
    """Statistical recipe for one synthetic test set."""

    name: str
    vectors: int
    width: int
    x_density: float  # target fraction of X bits, in [0, 1)
    pool_size: Optional[int] = None  # template count (None -> heuristic)
    zipf: float = 1.8  # template popularity skew (higher = more reuse)
    cluster_mean_len: float = 10.0  # mean care-cluster length in bits
    ones_bias: float = 0.4  # P(preferred value == 1) per position
    value_consistency: float = 0.97  # P(template agrees with the preference)
    mutate_x: float = 0.02  # P(template care bit relaxed to X)
    mutate_flip: float = 0.005  # P(template care value flipped)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vectors < 1 or self.width < 1:
            raise ValueError("vectors and width must be positive")
        if not 0.0 <= self.x_density < 1.0:
            raise ValueError("x_density must be in [0, 1)")
        if self.cluster_mean_len < 1.0:
            raise ValueError("cluster_mean_len must be >= 1")
        if self.zipf < 0.0:
            raise ValueError("zipf must be non-negative")
        for p in (
            self.ones_bias,
            self.value_consistency,
            self.mutate_x,
            self.mutate_flip,
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be within [0, 1]")

    @property
    def total_bits(self) -> int:
        """Uncompressed size of the synthesized set."""
        return self.vectors * self.width

    @property
    def target_care(self) -> int:
        """Care bits per vector implied by the density target."""
        return max(1, round(self.width * (1.0 - self.x_density)))


def synthesize(profile: CubeProfile) -> TestSet:
    """Generate a deterministic test set matching ``profile``."""
    rng = random.Random(profile.seed)
    pool_size = profile.pool_size or max(4, profile.vectors // 24)
    preferred = [
        1 if rng.random() < profile.ones_bias else 0
        for _ in range(profile.width)
    ]
    # Templates carry slightly more care than the target so the
    # relaxation mutation lands the set on the target density.
    template_care = max(
        1, round(profile.target_care / max(1e-9, 1.0 - profile.mutate_x))
    )
    templates = [
        _make_template(profile, template_care, preferred, rng)
        for _ in range(pool_size)
    ]
    weights = [1.0 / (rank + 1.0) ** profile.zipf for rank in range(pool_size)]

    cubes: List[TernaryVector] = []
    for _ in range(profile.vectors):
        template = rng.choices(templates, weights)[0]
        cubes.append(_instantiate(profile, template, rng))
    _calibrate(cubes, profile, rng)
    names = [f"sc{i}" for i in range(profile.width)]
    return TestSet(names, cubes, name=profile.name)


def profile_for(
    name: str,
    vectors: int,
    width: int,
    x_density: float,
    seed: Optional[int] = None,
    **overrides,
) -> CubeProfile:
    """Convenience constructor with a stable name-derived default seed."""
    if seed is None:
        seed = sum(ord(c) * 131 ** i for i, c in enumerate(name)) % (2**31)
    profile = CubeProfile(
        name=name, vectors=vectors, width=width, x_density=x_density, seed=seed
    )
    return replace(profile, **overrides) if overrides else profile


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _make_template(
    profile: CubeProfile,
    care_bits: int,
    preferred: List[int],
    rng: random.Random,
) -> List[Tuple[int, int]]:
    """A template is a sorted list of (position, value) care assignments."""
    care_bits = min(care_bits, profile.width)
    assignments: Dict[int, int] = {}
    while len(assignments) < care_bits:
        start = rng.randrange(profile.width)
        length = max(
            1,
            min(
                round(rng.expovariate(1.0 / profile.cluster_mean_len)) + 1,
                profile.width - start,
            ),
        )
        for pos in range(start, start + length):
            if len(assignments) >= care_bits:
                break
            value = preferred[pos]
            if rng.random() >= profile.value_consistency:
                value = 1 - value
            assignments.setdefault(pos, value)
    return sorted(assignments.items())


def _instantiate(
    profile: CubeProfile, template: List[Tuple[int, int]], rng: random.Random
) -> TernaryVector:
    """One vector: the template, lightly relaxed and flipped."""
    value = 0
    care = 0
    for pos, bit in template:
        if rng.random() < profile.mutate_x:
            continue
        if rng.random() < profile.mutate_flip:
            bit = 1 - bit
        care |= 1 << pos
        if bit:
            value |= 1 << pos
    return TernaryVector.from_masks(value, care, profile.width)


def _calibrate(
    cubes: List[TernaryVector], profile: CubeProfile, rng: random.Random
) -> None:
    """Nudge the set's global care count onto the density target.

    Adds or relaxes single care bits spread across vectors until the
    global density is within half a percent of the target, so the
    cluster structure survives the correction.
    """
    target_total = round(profile.total_bits * (1.0 - profile.x_density))
    tolerance = max(1, profile.total_bits // 200)
    current = sum(c.care_count for c in cubes)
    attempts = 0
    limit = 4 * profile.total_bits
    while abs(target_total - current) > tolerance and attempts < limit:
        attempts += 1
        index = rng.randrange(len(cubes))
        cube = cubes[index]
        pos = rng.randrange(profile.width)
        if target_total > current:
            if cube[pos] is None:
                bit = 1 if rng.random() < profile.ones_bias else 0
                extra = TernaryVector.from_masks(
                    bit << pos, 1 << pos, profile.width
                )
                cubes[index] = cube.merge(extra)
                current += 1
        else:
            if cube[pos] is not None:
                care = cube.care_mask & ~(1 << pos)
                cubes[index] = TernaryVector.from_masks(
                    cube.value_mask & care, care, profile.width
                )
                current -= 1
