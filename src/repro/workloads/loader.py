"""Building test sets for the paper's benchmarks.

:func:`build_testset` turns a :class:`~repro.workloads.paper.PaperBenchmark`
into a concrete :class:`~repro.circuit.scan.TestSet` via the synthetic
cube generator, statistically matched to the published profile (size
and X density; see DESIGN.md for the substitution rationale).  A
``scale`` below 1.0 shrinks the vector count proportionally — handy for
quick tests — while preserving width and density.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..circuit.scan import TestSet
from .cubes import profile_for, synthesize
from .paper import BENCHMARKS, PaperBenchmark, get_benchmark

__all__ = ["build_corpus", "build_testset", "available_workloads"]

#: Default corpus for batched runs and the throughput benchmark: the
#: paper's full-scan ISCAS'89 circuits, smallest to largest.
DEFAULT_CORPUS = (
    "s5378f",
    "s9234f",
    "s35932f",
    "s15850f",
    "s13207f",
    "s38417f",
    "s38584f",
)


def available_workloads() -> list:
    """Names accepted by :func:`build_testset`."""
    return sorted(BENCHMARKS)


def build_testset(
    benchmark: Union[str, PaperBenchmark],
    scale: float = 1.0,
    seed: Optional[int] = None,
    **profile_overrides,
) -> TestSet:
    """Synthesize the matched test set for a paper benchmark.

    Parameters
    ----------
    benchmark:
        Benchmark name (e.g. ``"s13207f"``) or a profile object.
    scale:
        Vector-count multiplier in (0, 1]; width and X density are kept
        so per-vector structure is unchanged.
    seed:
        Override the stable per-benchmark default seed.
    profile_overrides:
        Extra :class:`~repro.workloads.cubes.CubeProfile` fields
        (``pool_size``, ``ones_bias``...).
    """
    if isinstance(benchmark, str):
        benchmark = get_benchmark(benchmark)
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    vectors = max(1, round(benchmark.vectors * scale))
    overrides = dict(benchmark.profile_overrides)
    overrides.update(profile_overrides)
    profile = profile_for(
        benchmark.name,
        vectors=vectors,
        width=benchmark.width,
        x_density=benchmark.x_density,
        seed=seed,
        **overrides,
    )
    return synthesize(profile)


def build_corpus(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: Optional[int] = None,
) -> List[Tuple[str, TestSet]]:
    """Synthesize a whole corpus of matched test sets, in name order.

    The workload unit of the batch engine and the throughput benchmark:
    one deterministic :class:`TestSet` per benchmark name (default
    :data:`DEFAULT_CORPUS`), all at the same ``scale``.
    """
    if names is None:
        names = DEFAULT_CORPUS
    return [(name, build_testset(name, scale=scale, seed=seed)) for name in names]
