"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = ["Table", "render"]


@dataclass
class Table:
    """A rendered-result table: headers, string-formatted rows, context."""

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append a row, stringifying every cell."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def column(self, header: str) -> List[str]:
        """All cells of one column (for assertions in tests)."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """ASCII rendering, markdown-pipe style."""
        return render(self)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _fmt(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render(table: Table) -> str:
    """Markdown-style fixed-width rendering of a :class:`Table`."""
    widths = [len(h) for h in table.headers]
    for row in table.rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    out = [table.title, line(table.headers)]
    out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in table.rows:
        out.append(line(row))
    for note in table.notes:
        out.append(f"  note: {note}")
    return "\n".join(out)
