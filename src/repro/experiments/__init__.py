"""Experiment harness: one runner per paper table, plus ablations."""

from .render import Table, render
from .tables import (
    ALL_TABLES,
    Lab,
    ablation_architecture,
    ablation_dontcare,
    ablation_lookahead,
    ablation_multichain,
    ablation_power,
    ablation_reset,
    ablation_xdensity,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)

__all__ = [
    "ALL_TABLES",
    "Lab",
    "Table",
    "ablation_architecture",
    "ablation_dontcare",
    "ablation_lookahead",
    "ablation_multichain",
    "ablation_power",
    "ablation_reset",
    "ablation_xdensity",
    "render",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
]
