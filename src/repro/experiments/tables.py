"""One runner per paper table (plus the ablations DESIGN.md calls out).

Each ``tableN`` function regenerates the corresponding table of the
paper on the matched synthetic workloads and returns a
:class:`~repro.experiments.render.Table` whose rows interleave measured
and published values.  ``scale`` shrinks the workloads for quick runs;
the benchmark harness uses ``scale=1.0``.

All functions share a per-call workload/compression cache so sweeps do
not regenerate or recompress identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..baselines import (
    GolombCompressor,
    LZ77Compressor,
    LZWCompressorAdapter,
)
from ..bitstream import TernaryVector
from ..core import CompressionResult, LZWConfig, compress, static_fill
from ..core.dontcare import STATIC_FILLS
from ..hardware import MemoryRequirements, analyze_download
from ..workloads import (
    TABLE1_CIRCUITS,
    TABLE3_CIRCUITS,
    build_testset,
    get_benchmark,
    profile_for,
    synthesize,
)
from .render import Table

__all__ = [
    "Lab",
    "ablation_multichain",
    "ablation_power",
    "ablation_reset",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "ablation_dontcare",
    "ablation_xdensity",
    "ablation_lookahead",
    "ablation_architecture",
    "ALL_TABLES",
]


@dataclass
class Lab:
    """Shared workload and compression cache for one experiment session."""

    scale: float = 1.0
    _streams: Dict[str, TernaryVector] = field(default_factory=dict)
    _results: Dict[Tuple[str, LZWConfig], CompressionResult] = field(
        default_factory=dict
    )

    def stream(self, name: str) -> TernaryVector:
        """The scan stream for a paper benchmark (cached)."""
        if name not in self._streams:
            self._streams[name] = build_testset(name, scale=self.scale).to_stream()
        return self._streams[name]

    def lzw(self, name: str, config: LZWConfig) -> CompressionResult:
        """LZW compression of a benchmark under a config (cached)."""
        key = (name, config)
        if key not in self._results:
            self._results[key] = compress(self.stream(name), config)
        return self._results[key]

    def config_for(self, name: str, **overrides) -> LZWConfig:
        """The paper's per-circuit configuration with optional overrides."""
        bench = get_benchmark(name)
        params = dict(char_bits=7, dict_size=bench.dict_size, entry_bits=63)
        params.update(overrides)
        return LZWConfig(**params)


# ----------------------------------------------------------------------
# Paper tables
# ----------------------------------------------------------------------
def table1(
    lab: Optional[Lab] = None,
    circuits: Sequence[str] = TABLE1_CIRCUITS,
) -> Table:
    """Table 1: LZW vs LZ77 vs RLE compression ratios."""
    lab = lab or Lab()
    table = Table(
        "Table 1. Compression comparison (percent)",
        ["Test", "LZW", "LZW paper", "LZ77", "LZ77 paper", "RLE", "RLE paper"],
        notes=[
            "LZW: C_C=7, C_MDATA=63, N per circuit; LZ77: 10-bit offset, "
            "6-bit length; RLE: Golomb, best power-of-two group size."
        ],
    )
    for name in circuits:
        bench = get_benchmark(name)
        stream = lab.stream(name)
        lzw = lab.lzw(name, lab.config_for(name))
        lz77 = LZ77Compressor().compress(stream)
        rle = GolombCompressor().compress(stream)
        table.add_row(
            name,
            lzw.ratio_percent,
            bench.paper_lzw,
            lz77.ratio_percent,
            bench.paper_lz77,
            rle.ratio_percent,
            bench.paper_rle,
        )
    return table


def table2(
    lab: Optional[Lab] = None,
    circuits: Sequence[str] = TABLE1_CIRCUITS,
    clock_ratios: Sequence[int] = (4, 8, 10),
) -> Table:
    """Table 2: download improvement vs decompressor clock ratio."""
    lab = lab or Lab()
    headers = ["Test", "Dict. size"]
    for k in clock_ratios:
        headers += [f"{k}x", f"{k}x paper"]
    table = Table(
        "Table 2. Download performance improvement and memory size",
        headers,
        notes=[
            "Serial architecture (download, then decode), as the paper's "
            "numbers imply: improvement tends to ratio - 1/k."
        ],
    )
    for name in circuits:
        bench = get_benchmark(name)
        config = lab.config_for(name)
        result = lab.lzw(name, config)
        cells = [name, MemoryRequirements.for_config(config).geometry]
        for k in clock_ratios:
            report = analyze_download(result.compressed, k)
            cells += [report.improvement_percent, bench.paper_perf.get(k)]
        table.add_row(*cells)
    return table


def table3(
    lab: Optional[Lab] = None,
    circuits: Sequence[str] = TABLE3_CIRCUITS,
) -> Table:
    """Table 3: the full ISCAS89 + ITC99 benchmark sweep."""
    lab = lab or Lab()
    table = Table(
        "Table 3. ISCAS89 and ITC99 benchmark results",
        [
            "Test",
            "Don't cares %",
            "Orig. size (bits)",
            "Compression",
            "Compression paper",
            "Dict. size",
        ],
        notes=[
            "ITC99 set sizes are estimates (see workloads.paper).",
            "C_C=7 except where N leaves no free codes (s35932f's N=128 "
            "uses C_C=5), mirroring the paper's per-circuit configuration.",
        ],
    )
    for name in circuits:
        bench = get_benchmark(name)
        stream = lab.stream(name)
        # A 7-bit character needs N > 128 to leave compress codes; for
        # smaller dictionaries shrink the character instead (the paper's
        # configurator allows both knobs).
        if bench.dict_size > 128:
            char_bits = 7
        else:
            char_bits = max(1, bench.dict_size.bit_length() - 3)
        result = lab.lzw(name, lab.config_for(name, char_bits=char_bits))
        x_pct = 100.0 * (1 - _care_fraction(stream))
        table.add_row(
            name,
            x_pct,
            len(stream),
            result.ratio_percent,
            bench.paper_lzw,
            bench.dict_size,
        )
    return table


def table4(
    lab: Optional[Lab] = None,
    circuits: Sequence[str] = TABLE1_CIRCUITS,
    char_sizes: Sequence[int] = (1, 4, 7, 10),
) -> Table:
    """Table 4: compression vs LZW character size (N=1024, C_MDATA=63)."""
    lab = lab or Lab()
    headers = ["Test"]
    for c in char_sizes:
        headers += [f"C_C={c}", f"C_C={c} paper"]
    table = Table(
        "Table 4. Compression versus LZW character size",
        headers,
        notes=[
            "N=1024 and C_MDATA=63 throughout; at C_C=10 the 1024 base "
            "codes exhaust the dictionary, so no compress codes remain."
        ],
    )
    for name in circuits:
        bench = get_benchmark(name)
        cells = [name]
        for c in char_sizes:
            config = lab.config_for(name, char_bits=c, dict_size=1024)
            result = lab.lzw(name, config)
            cells += [result.ratio_percent, bench.paper_charsize.get(c)]
        table.add_row(*cells)
    return table


def table5(
    lab: Optional[Lab] = None,
    circuits: Sequence[str] = TABLE1_CIRCUITS,
    entry_sizes: Sequence[int] = (63, 127, 255, 511),
) -> Table:
    """Table 5: compression vs dictionary entry size (N=1024, C_C=7)."""
    lab = lab or Lab()
    headers = ["Test"]
    for e in entry_sizes:
        headers += [f"C_MDATA={e}", f"{e} paper"]
    table = Table(
        "Table 5. Compression versus dictionary entry size",
        headers,
        notes=["Larger entries help until the longest phrase fits (Table 6)."],
    )
    for name in circuits:
        bench = get_benchmark(name)
        cells = [name]
        for e in entry_sizes:
            config = lab.config_for(name, entry_bits=e, dict_size=1024)
            result = lab.lzw(name, config)
            cells += [result.ratio_percent, bench.paper_entrysize.get(e)]
        table.add_row(*cells)
    return table


def table6(
    lab: Optional[Lab] = None,
    circuits: Sequence[str] = TABLE1_CIRCUITS,
    entry_sizes: Sequence[int] = (63, 127, 255),
    clock_ratio: int = 10,
) -> Table:
    """Table 6: download improvement vs entry size, with longest string."""
    lab = lab or Lab()
    headers = ["Test", "Longest string (bits)", "Paper longest"]
    for e in entry_sizes:
        headers += [f"perf@{e}", f"@{e} paper"]
    table = Table(
        f"Table 6. Performance versus entry size ({clock_ratio}x clock)",
        headers,
        notes=[
            "Longest string = longest phrase under an unbounded entry "
            "(C_MDATA large); compression and performance saturate once "
            "C_MDATA reaches it."
        ],
    )
    for name in circuits:
        bench = get_benchmark(name)
        # The longest phrase the encoder would form with no entry bound.
        unbounded = lab.lzw(
            name, lab.config_for(name, entry_bits=1023, dict_size=1024)
        )
        cells = [name, unbounded.longest_entry_bits, bench.paper_longest_string]
        for e in entry_sizes:
            config = lab.config_for(name, entry_bits=e, dict_size=1024)
            result = lab.lzw(name, config)
            report = analyze_download(result.compressed, clock_ratio)
            cells += [
                report.improvement_percent,
                bench.paper_perf_entrysize.get(e),
            ]
        table.add_row(*cells)
    return table


# ----------------------------------------------------------------------
# Ablations (claims in the paper's prose)
# ----------------------------------------------------------------------
def ablation_dontcare(
    lab: Optional[Lab] = None,
    circuits: Sequence[str] = TABLE1_CIRCUITS,
    fills: Sequence[str] = STATIC_FILLS,
) -> Table:
    """Section 5 claim: static pre-fills reach only 40-60%."""
    lab = lab or Lab()
    headers = ["Test", "dynamic"] + [f"static:{f}" for f in fills]
    table = Table(
        "Ablation. Dynamic don't-care assignment vs static pre-fills",
        headers,
        notes=[
            "Static rows fill every X before running the same LZW "
            "configuration; the paper reports 40-60% for such schemes."
        ],
    )
    for name in circuits:
        config = lab.config_for(name)
        stream = lab.stream(name)
        cells = [name, lab.lzw(name, config).ratio_percent]
        for fill in fills:
            filled = static_fill(stream, fill, seed=0)
            cells.append(compress(filled, config).ratio_percent)
        table.add_row(*cells)
    return table


def ablation_xdensity(
    lab: Optional[Lab] = None,
    densities: Sequence[float] = (0.35, 0.5, 0.65, 0.8, 0.9, 0.95),
    vectors: int = 100,
    width: int = 400,
) -> Table:
    """Section 6 claim: compression is proportional to the X density.

    ``lab`` is accepted for interface uniformity; the sweep builds its
    own synthetic sets so the paper workload cache is not used.
    """
    del lab
    table = Table(
        "Ablation. Compression versus don't-care density",
        ["X density %", "LZW", "LZ77", "RLE"],
        notes=[f"Synthetic sets: {vectors} vectors x {width} bits."],
    )
    config = LZWConfig()
    for xd in densities:
        profile = profile_for(
            f"xd{int(xd * 100)}", vectors=vectors, width=width, x_density=xd
        )
        stream = synthesize(profile).to_stream()
        lzw = LZWCompressorAdapter(config).compress(stream)
        lz77 = LZ77Compressor().compress(stream)
        rle = GolombCompressor().compress(stream)
        table.add_row(
            100.0 * xd,
            lzw.ratio_percent,
            lz77.ratio_percent,
            rle.ratio_percent,
        )
    return table


def ablation_lookahead(
    lab: Optional[Lab] = None,
    circuits: Sequence[str] = ("s13207f", "s9234f"),
    windows: Sequence[int] = (1, 2, 4, 8),
) -> Table:
    """DESIGN.md open point: the sliding-window depth of the assignment."""
    lab = lab or Lab()
    headers = ["Test", "policy:first", "policy:popular"] + [
        f"W={w}" for w in windows
    ]
    table = Table(
        "Ablation. Dynamic-assignment heuristic and lookahead depth",
        headers,
    )
    for name in circuits:
        cells = [name]
        for policy in ("first", "popular"):
            config = lab.config_for(name, policy=policy)
            cells.append(lab.lzw(name, config).ratio_percent)
        for w in windows:
            config = lab.config_for(name, policy="lookahead", lookahead=w)
            cells.append(lab.lzw(name, config).ratio_percent)
        table.add_row(*cells)
    return table


def ablation_architecture(
    lab: Optional[Lab] = None,
    circuits: Sequence[str] = ("s13207f", "s9234f"),
    clock_ratios: Sequence[int] = (4, 10),
) -> Table:
    """Extension: serial vs double-buffered decompressor front end."""
    lab = lab or Lab()
    headers = ["Test", "ratio"]
    for k in clock_ratios:
        headers += [f"serial@{k}x", f"buffered@{k}x"]
    table = Table(
        "Ablation. Serial vs double-buffered input shifter",
        headers,
        notes=[
            "Double buffering overlaps download with decode; improvement "
            "approaches the compression ratio at modest clock ratios."
        ],
    )
    for name in circuits:
        result = lab.lzw(name, lab.config_for(name))
        cells = [name, result.ratio_percent]
        for k in clock_ratios:
            serial = analyze_download(result.compressed, k)
            buffered = analyze_download(
                result.compressed, k, double_buffered=True
            )
            cells += [serial.improvement_percent, buffered.improvement_percent]
        table.add_row(*cells)
    return table


def ablation_reset(
    lab: Optional[Lab] = None,
    circuits: Sequence[str] = ("s13207f", "s9234f"),
    dict_sizes: Sequence[int] = (256, 1024),
) -> Table:
    """Extension: freeze-when-full (the paper) vs adaptive flush.

    Classic LZW implementations flush the dictionary when it fills; the
    paper freezes it instead.  Scan test sets are statistically
    stationary, so the frozen dictionary should keep paying off while a
    flush discards everything it learned — this table checks that the
    paper's choice is the right one.
    """
    lab = lab or Lab()
    headers = ["Test"]
    for n in dict_sizes:
        headers += [f"frozen N={n}", f"flush N={n}"]
    table = Table(
        "Ablation. Dictionary-full policy: freeze (paper) vs adaptive flush",
        headers,
    )
    for name in circuits:
        cells = [name]
        for n in dict_sizes:
            frozen = lab.lzw(name, lab.config_for(name, dict_size=n))
            flush = lab.lzw(
                name, lab.config_for(name, dict_size=n, reset_on_full=True)
            )
            cells += [frozen.ratio_percent, flush.ratio_percent]
        table.add_row(*cells)
    return table


def ablation_multichain(
    lab: Optional[Lab] = None,
    circuits: Sequence[str] = ("s9234f", "s15850f"),
    chain_counts: Sequence[int] = (1, 2, 4, 8),
) -> Table:
    """Extension: ratio cost of multi-chain scan arrangements.

    The paper's method is scan-architecture independent in *mechanism*;
    this quantifies how the arrangement changes the stream the engine
    sees — independent per-chain dictionaries versus one engine on the
    cycle-interleaved stream versus the single-chain baseline.
    """
    from ..core.multichain import (
        compress_interleaved,
        compress_per_chain,
        partition_chains,
    )
    from ..workloads import build_testset

    lab = lab or Lab()
    headers = ["Test", "single"]
    for n in chain_counts:
        if n == 1:
            continue
        headers += [f"per-chain x{n}", f"interleaved x{n}"]
    table = Table(
        "Ablation. Multi-chain arrangements (ratio %)",
        headers,
        notes=[
            "per-chain: independent engine+dictionary per chain; "
            "interleaved: one engine on the cycle-interleaved stream."
        ],
    )
    for name in circuits:
        config = lab.config_for(name)
        test_set = build_testset(name, scale=lab.scale)
        cells = [name, lab.lzw(name, config).ratio_percent]
        for n in chain_counts:
            if n == 1:
                continue
            chains = partition_chains(test_set, n)
            cells.append(
                compress_per_chain(test_set, chains, config).ratio_percent
            )
            cells.append(
                compress_interleaved(test_set, chains, config).ratio_percent
            )
        table.add_row(*cells)
    return table


def ablation_power(
    lab: Optional[Lab] = None,
    circuits: Sequence[str] = ("s13207f", "s9234f"),
) -> Table:
    """Extension: the scan-power cost of the dynamic X assignment.

    The compression-friendly fill is not the power-friendly fill; this
    quantifies the weighted-transition overhead of the LZW assignment
    against the minimum-transition repeat fill.
    """
    from ..analysis import power_report
    from ..workloads import build_testset

    lab = lab or Lab()
    table = Table(
        "Ablation. Scan-shift power (weighted transition count)",
        ["Test", "repeat fill", "zero fill", "LZW assignment",
         "LZW overhead % vs repeat"],
        notes=["Lower WTM = less shift power; the LZW assignment trades "
               "power for compression."],
    )
    for name in circuits:
        test_set = build_testset(name, scale=lab.scale)
        result = lab.lzw(name, lab.config_for(name))
        report = power_report(test_set, {"lzw": result.assigned_stream})
        table.add_row(
            name,
            report.wtm["repeat"],
            report.wtm["zero"],
            report.wtm["lzw"],
            report.overhead_percent("lzw", baseline="repeat"),
        )
    return table


def _care_fraction(stream: TernaryVector) -> float:
    return stream.care_count / len(stream) if len(stream) else 0.0


#: Name -> runner, for the CLI and the report generator.
ALL_TABLES = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "ablation_dontcare": ablation_dontcare,
    "ablation_xdensity": ablation_xdensity,
    "ablation_lookahead": ablation_lookahead,
    "ablation_architecture": ablation_architecture,
    "ablation_multichain": ablation_multichain,
    "ablation_power": ablation_power,
    "ablation_reset": ablation_reset,
}
