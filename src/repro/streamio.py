"""Container format v5: the crash-safe streaming frame journal.

The v2–v4 containers are one-shot artefacts: the whole payload is
packed in memory and installed atomically.  A streaming session cannot
do that — the input may be arbitrarily large and the process may die at
any point — so v5 is an *append-only frame journal*: a fixed stream
header binding the configuration, then data frames (each a bounded
slice of the code stream with its own CRCs and a dictionary-state
digest), then one terminal frame sealing the totals.  Each frame is
made durable (``flush`` + ``fsync`` via
:class:`~repro.reliability.atomic.DurableAppendFile`) before the next
begins, so a crash leaves a prefix of whole frames plus at most one
torn tail — a *resumable, salvageable* artefact, never a silent loss.

Layout (big-endian, all fixed-width)::

    stream header (19 bytes)
    0   4   magic  b"LZWT"
    4   1   format version (5)
    5   1   char_bits (C_C)
    6   4   dict_size (N)
    10  4   entry_bits (C_MDATA)
    14  1   flags (bit 0: reset_on_full)
    15  4   CRC32 of header bytes 0..15

    data frame (41-byte header + payload), repeated 0+ times
    0   1   frame type 0x01
    1   4   frame index (0-based, strictly sequential)
    5   4   code count in this frame
    9   4   payload byte length
    13  8   cumulative original_bits through this frame
    21  4   CRC32 of this frame's payload bytes
    25  4   chain CRC: running CRC32 of all data-frame payload bytes
    29  8   frame seal: first 8 bytes of SHA-256 over the decoder's
            dictionary-snapshot digest after this frame's last code,
            concatenated with the running CRC32 of every character
            decoded so far (see :func:`frame_seal`)
    37  4   CRC32 of frame-header bytes 0..37
    41  ..  payload: the codes, MSB-first, zero-padded to a byte

    terminal frame (37 bytes)
    0   1   frame type 0x02
    1   4   total data-frame count
    5   8   total code count
    13  8   total original_bits of the stream
    21  4   final chain CRC
    25  8   final frame seal (as above)
    33  4   CRC32 of frame-header bytes 0..33

The **chain CRC** makes every frame attest to the entire payload
before it, so a checksum-consistent tamper of frame *k* (payload and
its own CRCs rewritten together) is still caught by frame *k+1* or the
terminal.  The **frame seal** is the second, independent seal, and it
covers the *decoded* content: both the dictionary state and a running
CRC of the expanded characters.  The dictionary digest alone would not
do — swapping a frame's *last* code for another live code leaves the
boundary dictionary unchanged (that code's allocation happens on the
next frame's first push) while decoding to different characters, which
only the character CRC half of the seal catches.  Seals are produced
by a shadow :class:`~repro.core.stream.StreamDecoder` the writer
pushes every code through — which also means any frame boundary
doubles as a **resume point**: the snapshot the seal attests is
exactly the ``seed`` (with the frame's last code as ``link``) that a
new :class:`~repro.core.stream.StreamEncoder` continues from,
byte-identically to the uninterrupted encode.

``original_bits`` bookkeeping: a mid-stream frame's cumulative bits are
exactly ``chars_so_far * char_bits`` (no padding mid-stream); frames
flushed by ``finalize()`` clamp to the true total, because only the
finalize path appends the X-padded partial character.  The terminal's
``total_original_bits`` is authoritative for truncating the decode.

A missing terminal frame or a torn trailing frame raises a typed
:class:`ContainerError` with ``reason="torn_tail"`` /
``"missing_terminal"`` — distinguishable from mid-stream corruption
(``reason="frame_header"``/``"payload_crc"``/``"chain_crc"``/...), so
salvage knows the difference between "crashed while appending" (keep
the prefix, resume) and "bit rot in the middle" (keep the prefix,
alert).
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from typing import BinaryIO, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from .bitstream import BitReader, BitWriter, TernaryVector
from .core import DictionarySnapshot, LZWConfig
from .core.stream import StreamDecoder, StreamEncoder, chars_to_vector
from .observability import NULL_RECORDER, Recorder
from .observability import schema as ev
from .reliability.errors import ConfigError, ContainerError, DecodeError

__all__ = [
    "FRAME_DATA",
    "FRAME_TERMINAL",
    "FRAME_DATA_HEADER_SIZE",
    "FRAME_TERMINAL_HEADER_SIZE",
    "FrameRecord",
    "StreamContainerReader",
    "StreamContainerWriter",
    "StreamScan",
    "TerminalRecord",
    "V5_HEADER_CRC_OFFSET",
    "V5_HEADER_SIZE",
    "VERSION_STREAM",
    "DATA_PAYLOAD_CRC_OFFSET",
    "DATA_CHAIN_CRC_OFFSET",
    "DATA_HEADER_CRC_OFFSET",
    "decode_stream_bytes",
    "frame_seal",
    "iter_decode_stream",
    "pack_chars",
    "pack_frame_payload",
    "read_stream_header",
    "scan_stream",
    "stream_header_bytes",
    "terminal_frame_bytes",
]

_MAGIC = b"LZWT"
VERSION_STREAM = 5

_HEADER_V5 = struct.Struct(">4sBBIIBI")
_FRAME_DATA_HEADER = struct.Struct(">BIIIQII8sI")
_FRAME_TERMINAL_HEADER = struct.Struct(">BIQQI8sI")

V5_HEADER_SIZE = _HEADER_V5.size  # 19
V5_HEADER_CRC_OFFSET = 15
FRAME_DATA_HEADER_SIZE = _FRAME_DATA_HEADER.size  # 41
FRAME_TERMINAL_HEADER_SIZE = _FRAME_TERMINAL_HEADER.size  # 37

FRAME_DATA = 0x01
FRAME_TERMINAL = 0x02

# Offsets *within a data-frame header* (for the fault injectors, which
# build checksum-consistent corruptions).
DATA_PAYLOAD_CRC_OFFSET = 21
DATA_CHAIN_CRC_OFFSET = 25
DATA_HEADER_CRC_OFFSET = 37

_FLAG_RESET_ON_FULL = 0x01

#: Default codes per data frame: with 16-bit codes this is ~8 KiB of
#: payload per fsync — small enough to bound loss, large enough that
#: the fsync amortises.
DEFAULT_CODES_PER_FRAME = 4096


def pack_chars(chars: Sequence[int]) -> bytes:
    """Canonical byte form of decoded characters (for the seal CRC)."""
    return struct.pack(f">{len(chars)}I", *chars) if chars else b""


def frame_seal(snapshot: DictionarySnapshot, chars_crc: int) -> bytes:
    """The 8-byte frame seal over the decoded content so far.

    Covers the dictionary state *and* a running CRC32 of every decoded
    character, so a tamper that decodes through the same dictionary to
    different characters (e.g. a frame's last code swapped for another
    live code) is still caught.
    """
    return hashlib.sha256(
        bytes.fromhex(snapshot.digest) + chars_crc.to_bytes(4, "big")
    ).digest()[:8]


def pack_frame_payload(codes: Sequence[int], code_bits: int) -> bytes:
    """Pack codes MSB-first, zero-padded to a byte boundary."""
    writer = BitWriter()
    for code in codes:
        writer.write(code, code_bits)
    return writer.to_bytes()


def _unpack_frame_payload(
    payload: bytes, num_codes: int, code_bits: int
) -> Tuple[int, ...]:
    reader = BitReader.from_bytes(payload, num_codes * code_bits)
    return tuple(reader.read(code_bits) for _ in range(num_codes))


def stream_header_bytes(config: LZWConfig) -> bytes:
    """The 19-byte v5 stream header binding the configuration."""
    without_crc = _HEADER_V5.pack(
        _MAGIC,
        VERSION_STREAM,
        config.char_bits,
        config.dict_size,
        config.entry_bits,
        _FLAG_RESET_ON_FULL if config.reset_on_full else 0,
        0,
    )
    crc = zlib.crc32(without_crc[:V5_HEADER_CRC_OFFSET])
    return without_crc[:V5_HEADER_CRC_OFFSET] + struct.pack(">I", crc)


def read_stream_header(data: bytes) -> LZWConfig:
    """Parse and CRC-check a v5 stream header; returns the config."""
    if len(data) < V5_HEADER_SIZE:
        raise ContainerError(
            "truncated v5 stream header",
            byte_offset=len(data),
            reason="torn_tail",
        )
    if data[:4] != _MAGIC:
        raise ContainerError(f"bad magic {data[:4]!r}", byte_offset=0, field="magic")
    if data[4] != VERSION_STREAM:
        raise ContainerError(
            f"not a streaming (v5) container (version {data[4]})",
            byte_offset=4,
            field="version",
        )
    _, _, char_bits, dict_size, entry_bits, flags, header_crc = _HEADER_V5.unpack_from(
        data
    )
    actual = zlib.crc32(data[:V5_HEADER_CRC_OFFSET])
    if actual != header_crc:
        raise ContainerError(
            "stream header CRC mismatch (corrupted header)",
            byte_offset=V5_HEADER_CRC_OFFSET,
            expected=header_crc,
            actual=actual,
            reason="header_crc",
        )
    try:
        return LZWConfig(
            char_bits=char_bits,
            dict_size=dict_size,
            entry_bits=entry_bits,
            reset_on_full=bool(flags & _FLAG_RESET_ON_FULL),
        )
    except ConfigError as exc:
        raise ContainerError(
            f"invalid configuration in stream header: {exc.message}",
            field=getattr(exc, "field", None),
        ) from None


def terminal_frame_bytes(
    frame_count: int,
    total_codes: int,
    total_original_bits: int,
    chain_crc: int,
    seal: bytes,
) -> bytes:
    """The 37-byte terminal frame sealing the given totals.

    The writer's :meth:`StreamContainerWriter.finalize` emits exactly
    this; it is public so repair (``repro fsck --repair``) can re-seal
    a verified frame prefix after a torn tail is cut away.
    """
    without_crc = _FRAME_TERMINAL_HEADER.pack(
        FRAME_TERMINAL,
        frame_count,
        total_codes,
        total_original_bits,
        chain_crc,
        seal,
        0,
    )
    crc = zlib.crc32(without_crc[: FRAME_TERMINAL_HEADER_SIZE - 4])
    return without_crc[: FRAME_TERMINAL_HEADER_SIZE - 4] + struct.pack(">I", crc)


class FrameRecord(NamedTuple):
    """One structurally validated data frame."""

    index: int
    num_codes: int
    original_bits_cum: int
    payload_crc: int
    chain_crc: int
    dict_digest: bytes
    codes: Tuple[int, ...]
    header_offset: int
    end_offset: int


class TerminalRecord(NamedTuple):
    """The parsed terminal frame sealing the stream."""

    frame_count: int
    total_codes: int
    total_original_bits: int
    chain_crc: int
    dict_digest: bytes
    header_offset: int
    end_offset: int


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------


class StreamContainerWriter:
    """Incremental v5 writer: buffer codes, emit durable frames.

    ``sink`` is anything with ``write(bytes)``; when it also has a
    ``sync()`` method (:class:`DurableAppendFile`), it is called after
    the header and after every frame, making each frame durable before
    the next begins.  The writer keeps a *shadow decoder* it pushes
    every code through — the source of the per-frame dictionary digests
    and cumulative original-bits, and a continuous proof that the
    encoder's output decodes (a code the shadow rejects raises
    immediately instead of poisoning the artefact).
    """

    def __init__(
        self,
        config: LZWConfig,
        sink,
        codes_per_frame: int = DEFAULT_CODES_PER_FRAME,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if codes_per_frame < 1:
            raise ValueError("codes_per_frame must be >= 1")
        self.config = config
        self.sink = sink
        self.codes_per_frame = codes_per_frame
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._shadow = StreamDecoder(config)
        self._pending: List[int] = []
        self._frame_index = 0
        self._total_codes = 0
        self._chain_crc = 0
        self._chars_crc = 0
        self._total_bits: Optional[int] = None
        self._finished = False
        self._bytes_written = 0
        header = stream_header_bytes(config)
        self._emit(header)
        self._sync()

    @property
    def frames_written(self) -> int:
        return self._frame_index

    @property
    def bytes_written(self) -> int:
        return self._bytes_written

    def _emit(self, data: bytes) -> None:
        self.sink.write(data)
        self._bytes_written += len(data)

    def _sync(self) -> None:
        sync = getattr(self.sink, "sync", None)
        if sync is not None:
            sync()

    def write_codes(self, codes: Iterable[int]) -> int:
        """Buffer codes; flush every full frame.  Returns frames flushed."""
        if self._finished:
            raise RuntimeError("write_codes() after finalize()")
        self._pending.extend(codes)
        flushed = 0
        while len(self._pending) >= self.codes_per_frame:
            frame = self._pending[: self.codes_per_frame]
            del self._pending[: self.codes_per_frame]
            self._flush_frame(frame)
            flushed += 1
        return flushed

    def finalize(
        self, final_codes: Iterable[int], total_original_bits: int
    ) -> None:
        """Flush the remaining codes and seal with the terminal frame.

        ``total_original_bits`` is the exact bit count fed to the
        encoder (``StreamEncoder.original_bits`` after its own
        ``finalize()``) — frames flushed here clamp their cumulative
        bits to it, because only the finalize path carries the X-padded
        partial character.
        """
        if self._finished:
            raise RuntimeError("finalize() called twice")
        self._pending.extend(final_codes)
        self._total_bits = total_original_bits
        while self._pending:
            frame = self._pending[: self.codes_per_frame]
            del self._pending[: self.codes_per_frame]
            self._flush_frame(frame)
        self._emit(
            terminal_frame_bytes(
                self._frame_index,
                self._total_codes,
                total_original_bits,
                self._chain_crc,
                frame_seal(self._shadow.snapshot(), self._chars_crc),
            )
        )
        self._sync()
        self._finished = True
        if self.recorder.enabled:
            self.recorder.incr(ev.CONTAINER_BYTES_WRITTEN, self._bytes_written)

    def _flush_frame(self, codes: Sequence[int]) -> None:
        shadow = self._shadow
        try:
            for code in codes:
                self._chars_crc = zlib.crc32(
                    pack_chars(shadow.push(code)), self._chars_crc
                )
        except DecodeError as exc:
            raise ContainerError(
                f"encoder emitted an undecodable code: {exc.message}",
                frame=self._frame_index,
            ) from exc
        cum_bits = shadow.chars_decoded * self.config.char_bits
        if self._total_bits is not None:
            cum_bits = min(cum_bits, self._total_bits)
        payload = pack_frame_payload(codes, self.config.code_bits)
        self._chain_crc = zlib.crc32(payload, self._chain_crc)
        header_wo_crc = _FRAME_DATA_HEADER.pack(
            FRAME_DATA,
            self._frame_index,
            len(codes),
            len(payload),
            cum_bits,
            zlib.crc32(payload),
            self._chain_crc,
            frame_seal(shadow.snapshot(), self._chars_crc),
            0,
        )
        crc = zlib.crc32(header_wo_crc[: FRAME_DATA_HEADER_SIZE - 4])
        self._emit(
            header_wo_crc[: FRAME_DATA_HEADER_SIZE - 4]
            + struct.pack(">I", crc)
            + payload
        )
        self._sync()
        self._frame_index += 1
        self._total_codes += len(codes)
        if self.recorder.enabled:
            self.recorder.incr(ev.STREAM_FRAMES_WRITTEN)


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------


class StreamContainerReader:
    """Incremental v5 reader over a binary file object.

    Validates structure as it goes — header CRCs, payload CRCs, the
    chain CRC, frame-index sequencing — and raises a typed
    :class:`ContainerError` at the first problem, with ``reason``
    distinguishing a torn tail (``"torn_tail"``, the crash signature)
    from mid-stream corruption and a clean-but-unsealed journal
    (``"missing_terminal"``).  Dictionary digests are *not* checked
    here (they need a decode); :func:`iter_decode_stream` checks them.
    """

    def __init__(self, fh: BinaryIO, recorder: Optional[Recorder] = None) -> None:
        self._fh = fh
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._offset = 0
        header = self._read_exact(V5_HEADER_SIZE, "stream header")
        self.config = read_stream_header(header)
        self._chain_crc = 0
        self._next_index = 0
        self._total_codes = 0
        self.terminal: Optional[TerminalRecord] = None

    def _read_exact(self, n: int, what: str) -> bytes:
        data = self._fh.read(n)
        if len(data) < n:
            raise ContainerError(
                f"torn tail: {what} cut short at byte "
                f"{self._offset + len(data)} (expected {n} bytes)",
                byte_offset=self._offset + len(data),
                reason="torn_tail",
            )
        self._offset += n
        return data

    def frames(self) -> Iterable[FrameRecord]:
        """Yield data frames in order; stops after the terminal frame.

        Iterate to exhaustion and then check :attr:`terminal`; a torn
        or corrupt journal raises mid-iteration.
        """
        while True:
            frame = self.read_frame()
            if frame is None:
                return
            yield frame

    def read_frame(self) -> Optional[FrameRecord]:
        """Read one data frame; returns None once the stream is sealed."""
        if self.terminal is not None:
            return None
        head_offset = self._offset
        lead = self._fh.read(1)
        if not lead:
            raise ContainerError(
                "stream ends without a terminal frame (unsealed journal)",
                byte_offset=self._offset,
                reason="missing_terminal",
            )
        self._offset += 1
        frame_type = lead[0]
        if frame_type == FRAME_DATA:
            rest = self._read_exact(
                FRAME_DATA_HEADER_SIZE - 1, f"frame[{self._next_index}] header"
            )
            header = lead + rest
            (
                _,
                index,
                num_codes,
                payload_len,
                cum_bits,
                payload_crc,
                chain_crc,
                dict_digest,
                header_crc,
            ) = _FRAME_DATA_HEADER.unpack(header)
            actual = zlib.crc32(header[: FRAME_DATA_HEADER_SIZE - 4])
            if actual != header_crc:
                raise ContainerError(
                    f"frame[{self._next_index}] header CRC mismatch",
                    byte_offset=head_offset,
                    expected=header_crc,
                    actual=actual,
                    frame=self._next_index,
                    reason="frame_header",
                )
            if index != self._next_index:
                raise ContainerError(
                    f"frame index {index} out of sequence "
                    f"(expected {self._next_index})",
                    byte_offset=head_offset,
                    frame=self._next_index,
                    reason="frame_sequence",
                )
            expected_len = (num_codes * self.config.code_bits + 7) // 8
            if payload_len != expected_len:
                raise ContainerError(
                    f"frame[{index}] declares {payload_len} payload bytes "
                    f"for {num_codes} codes (expected {expected_len})",
                    byte_offset=head_offset,
                    frame=index,
                    reason="frame_header",
                )
            payload = self._read_exact(payload_len, f"frame[{index}] payload")
            actual_crc = zlib.crc32(payload)
            if actual_crc != payload_crc:
                raise ContainerError(
                    f"frame[{index}] payload CRC mismatch",
                    byte_offset=head_offset + FRAME_DATA_HEADER_SIZE,
                    expected=payload_crc,
                    actual=actual_crc,
                    frame=index,
                    reason="payload_crc",
                )
            self._chain_crc = zlib.crc32(payload, self._chain_crc)
            if self._chain_crc != chain_crc:
                raise ContainerError(
                    f"frame[{index}] chain CRC mismatch (an earlier frame "
                    "was altered after writing)",
                    byte_offset=head_offset + DATA_CHAIN_CRC_OFFSET,
                    expected=chain_crc,
                    actual=self._chain_crc,
                    frame=index,
                    reason="chain_crc",
                )
            codes = _unpack_frame_payload(payload, num_codes, self.config.code_bits)
            self._next_index += 1
            self._total_codes += num_codes
            if self.recorder.enabled:
                self.recorder.incr(ev.STREAM_FRAMES_READ)
            return FrameRecord(
                index=index,
                num_codes=num_codes,
                original_bits_cum=cum_bits,
                payload_crc=payload_crc,
                chain_crc=chain_crc,
                dict_digest=dict_digest,
                codes=codes,
                header_offset=head_offset,
                end_offset=self._offset,
            )
        if frame_type == FRAME_TERMINAL:
            rest = self._read_exact(FRAME_TERMINAL_HEADER_SIZE - 1, "terminal frame")
            header = lead + rest
            (
                _,
                frame_count,
                total_codes,
                total_bits,
                chain_crc,
                dict_digest,
                header_crc,
            ) = _FRAME_TERMINAL_HEADER.unpack(header)
            actual = zlib.crc32(header[: FRAME_TERMINAL_HEADER_SIZE - 4])
            if actual != header_crc:
                raise ContainerError(
                    "terminal frame header CRC mismatch",
                    byte_offset=head_offset,
                    expected=header_crc,
                    actual=actual,
                    reason="frame_header",
                )
            if frame_count != self._next_index:
                raise ContainerError(
                    f"terminal declares {frame_count} frames, read "
                    f"{self._next_index}",
                    byte_offset=head_offset,
                    expected=frame_count,
                    actual=self._next_index,
                    reason="terminal_mismatch",
                )
            if total_codes != self._total_codes:
                raise ContainerError(
                    f"terminal declares {total_codes} codes, read "
                    f"{self._total_codes}",
                    byte_offset=head_offset,
                    expected=total_codes,
                    actual=self._total_codes,
                    reason="terminal_mismatch",
                )
            if chain_crc != self._chain_crc:
                raise ContainerError(
                    "terminal chain CRC mismatch (a data frame was altered "
                    "after writing)",
                    byte_offset=head_offset,
                    expected=chain_crc,
                    actual=self._chain_crc,
                    reason="chain_crc",
                )
            trailing = self._fh.read(1)
            if trailing:
                raise ContainerError(
                    "data past the terminal frame",
                    byte_offset=self._offset,
                    reason="trailing_data",
                )
            self.terminal = TerminalRecord(
                frame_count=frame_count,
                total_codes=total_codes,
                total_original_bits=total_bits,
                chain_crc=chain_crc,
                dict_digest=dict_digest,
                header_offset=head_offset,
                end_offset=self._offset,
            )
            return None
        raise ContainerError(
            f"unknown frame type 0x{frame_type:02x}",
            byte_offset=head_offset,
            reason="frame_type",
        )


# ----------------------------------------------------------------------
# Whole-container operations (scan / decode)
# ----------------------------------------------------------------------


class StreamScan(NamedTuple):
    """Tolerant structural scan of a v5 container.

    ``frames`` holds every structurally valid frame before the first
    problem; ``error`` is the typed failure that stopped the scan (None
    for a clean, sealed journal).  Dictionary digests are not checked
    by the scan — decode-level salvage does that.
    """

    config: LZWConfig
    frames: Tuple[FrameRecord, ...]
    terminal: Optional[TerminalRecord]
    error: Optional[ContainerError]


def scan_stream(data: bytes) -> StreamScan:
    """Scan container bytes, collecting frames until the first fault."""
    import io

    reader = StreamContainerReader(io.BytesIO(data))
    frames: List[FrameRecord] = []
    error: Optional[ContainerError] = None
    try:
        for frame in reader.frames():
            frames.append(frame)
    except ContainerError as exc:
        error = exc
    return StreamScan(
        config=reader.config,
        frames=tuple(frames),
        terminal=reader.terminal,
        error=error,
    )


def iter_decode_stream(
    reader: StreamContainerReader, recorder: Optional[Recorder] = None
):
    """Decode a v5 stream frame by frame, yielding character tuples.

    Yields one ``(chars, frame)`` pair per data frame, where ``chars``
    is the tuple of character values that frame's codes expanded to.
    Each frame's seal (dictionary digest + decoded-character CRC) and
    cumulative original-bits are verified as it is decoded; the
    terminal's seal and totals are verified at the end.  Bounded
    memory: only one frame's codes and expansions are live at a time.
    """
    config = reader.config
    decoder = StreamDecoder(config, recorder=recorder)
    char_bits = config.char_bits
    last_cum_bits = 0
    chars_crc = 0
    for frame in reader.frames():
        chars: List[int] = []
        try:
            for code in frame.codes:
                chars.extend(decoder.push(code))
        except DecodeError as exc:
            raise ContainerError(
                f"frame[{frame.index}] undecodable: {exc.message}",
                frame=frame.index,
                reason="frame_decode",
            ) from exc
        chars_crc = zlib.crc32(pack_chars(chars), chars_crc)
        actual_seal = frame_seal(decoder.snapshot(), chars_crc)
        if actual_seal != frame.dict_digest:
            raise ContainerError(
                f"frame[{frame.index}] seal mismatch "
                "(decoded content diverges from the writer's)",
                frame=frame.index,
                expected=frame.dict_digest.hex(),
                actual=actual_seal.hex(),
                reason="dict_digest",
            )
        cum_bits = decoder.chars_decoded * char_bits
        # Mid-stream frames carry exact cumulative bits; only the very
        # last frame may clamp below chars*char_bits (the X-padded
        # partial character), by strictly less than one character.
        diff = cum_bits - frame.original_bits_cum
        if diff < 0 or diff >= char_bits or frame.original_bits_cum < last_cum_bits:
            raise ContainerError(
                f"frame[{frame.index}] cumulative original_bits "
                f"{frame.original_bits_cum} inconsistent with decode "
                f"({cum_bits} bits decoded)",
                frame=frame.index,
                expected=cum_bits,
                actual=frame.original_bits_cum,
                reason="original_bits",
            )
        last_cum_bits = frame.original_bits_cum
        yield tuple(chars), frame
    terminal = reader.terminal
    if terminal is None:  # pragma: no cover — frames() raises first
        raise ContainerError(
            "stream ends without a terminal frame (unsealed journal)",
            reason="missing_terminal",
        )
    actual_seal = frame_seal(decoder.snapshot(), chars_crc)
    if actual_seal != terminal.dict_digest:
        raise ContainerError(
            "terminal seal mismatch",
            expected=terminal.dict_digest.hex(),
            actual=actual_seal.hex(),
            reason="dict_digest",
        )
    total_bits = terminal.total_original_bits
    decoded_bits = decoder.chars_decoded * char_bits
    if not (0 <= decoded_bits - total_bits < char_bits or decoded_bits == total_bits):
        raise ContainerError(
            f"terminal declares {total_bits} original bits, decode "
            f"produced {decoded_bits}",
            expected=total_bits,
            actual=decoded_bits,
            reason="original_bits",
        )


def decode_stream_bytes(
    data: bytes, recorder: Optional[Recorder] = None
) -> TernaryVector:
    """Strict one-shot decode of a v5 container to the original stream.

    Every structural check of :class:`StreamContainerReader` plus the
    per-frame dictionary digests; any fault raises the typed
    :class:`ContainerError` (use salvage for best-effort recovery).
    """
    import io

    rec = recorder if recorder is not None else NULL_RECORDER
    if rec.enabled:
        rec.incr(ev.CONTAINER_BYTES_READ, len(data))
    reader = StreamContainerReader(io.BytesIO(data), recorder=recorder)
    all_chars: List[int] = []
    for chars, _frame in iter_decode_stream(reader, recorder=recorder):
        all_chars.extend(chars)
    total_bits = reader.terminal.total_original_bits
    stream = chars_to_vector(tuple(all_chars), reader.config.char_bits)
    return stream[:total_bits]
