"""Static test-cube compaction.

ATPG emits one cube per targeted fault; many are pairwise compatible
(they disagree on no specified bit) and can merge into a single vector.
Greedy first-fit merging is the standard static compaction used by the
tools the paper's flow relies on; it reduces vector count without
touching detection (a merged cube covers both originals).
"""

from __future__ import annotations

from typing import List

from ..bitstream import TernaryVector

__all__ = ["compact_cubes"]


def compact_cubes(cubes: List[TernaryVector]) -> List[TernaryVector]:
    """Greedy first-fit merging of pairwise-compatible cubes.

    Cubes are considered most-specified first, so dense cubes seed the
    merged vectors and sparse ones fold into them.  The result covers
    every input cube (each original is compatible with — and less
    specified than — the merged vector it joined).
    """
    order = sorted(range(len(cubes)), key=lambda i: -cubes[i].care_count)
    merged: List[TernaryVector] = []
    for index in order:
        cube = cubes[index]
        for slot, existing in enumerate(merged):
            if existing.compatible(cube):
                merged[slot] = existing.merge(cube)
                break
        else:
            merged.append(cube)
    return merged
