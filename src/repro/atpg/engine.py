"""ATPG driver: collapse → PODEM → fault-drop → compact.

This is the "Test Insertion and Generation Program" box of the paper's
Figure 1, rebuilt on the in-package substrates.  It produces a
:class:`~repro.circuit.scan.TestSet` of ternary cubes whose X bits are
genuine ATPG don't-cares — the raw material of the compression study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..circuit.faults import Fault, collapse_faults
from ..circuit.netlist import Circuit
from ..circuit.scan import TestSet
from .compact import compact_cubes
from .fastsim import CompiledView
from .podem import PodemEngine

__all__ = ["ATPGConfig", "ATPGResult", "generate_tests"]


@dataclass(frozen=True)
class ATPGConfig:
    """Knobs of the generation loop."""

    backtrack_limit: int = 100
    compact: bool = True
    drop_faults: bool = True


@dataclass(frozen=True)
class ATPGResult:
    """Test set plus bookkeeping of the generation run."""

    test_set: TestSet
    detected: int
    untestable: int
    aborted: int
    total_faults: int
    cubes_before_compaction: int
    per_fault_status: Dict[Fault, str] = field(repr=False, default_factory=dict)

    @property
    def coverage_percent(self) -> float:
        """Detected / (total - untestable), the usual test-coverage metric."""
        testable = self.total_faults - self.untestable
        return 100.0 * self.detected / testable if testable else 0.0


def generate_tests(
    circuit: Circuit,
    config: Optional[ATPGConfig] = None,
) -> ATPGResult:
    """Generate a compacted ternary test set for all collapsed faults."""
    config = config or ATPGConfig()
    view = circuit.combinational_view()
    compiled = CompiledView(view)
    engine = PodemEngine(
        view, backtrack_limit=config.backtrack_limit, compiled=compiled
    )
    faults = collapse_faults(circuit)

    status: Dict[Fault, str] = {}
    cubes = []
    detected = untestable = aborted = 0
    pending: List[Fault] = list(faults)
    while pending:
        fault = pending.pop(0)
        result = engine.generate(fault)
        if not result.detected:
            status[fault] = result.status
            if result.status == "untestable":
                untestable += 1
            else:
                aborted += 1
            continue
        cube = result.cube
        assert cube is not None
        cubes.append(cube)
        status[fault] = "detected"
        detected += 1
        if config.drop_faults and pending:
            seed = compiled.cube_values(cube)
            good = compiled.evaluate(list(seed))
            survivors = []
            for other in pending:
                if compiled.detects(good, seed, compiled.compile_fault(other)):
                    status[other] = "detected"
                    detected += 1
                else:
                    survivors.append(other)
            pending = survivors

    raw_count = len(cubes)
    if config.compact:
        cubes = compact_cubes(cubes)
    test_set = TestSet(view.test_inputs, cubes, name=f"{circuit.name}-atpg")
    return ATPGResult(
        test_set=test_set,
        detected=detected,
        untestable=untestable,
        aborted=aborted,
        total_faults=len(faults),
        cubes_before_compaction=raw_count,
        per_fault_status=status,
    )
