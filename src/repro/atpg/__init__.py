"""ATPG substrate: PODEM, fault simulation, compaction and the driver."""

from .compact import compact_cubes
from .engine import ATPGConfig, ATPGResult, generate_tests
from .faultsim import FaultSimReport, fault_simulate, simulate_fault
from .hybrid import HybridConfig, HybridResult, hybrid_generate, prpg_patterns
from .podem import PodemEngine, PodemResult
from .ppsfp import pack_vectors, parallel_fault_simulate

__all__ = [
    "ATPGConfig",
    "ATPGResult",
    "FaultSimReport",
    "HybridConfig",
    "HybridResult",
    "PodemEngine",
    "PodemResult",
    "compact_cubes",
    "fault_simulate",
    "generate_tests",
    "hybrid_generate",
    "pack_vectors",
    "prpg_patterns",
    "parallel_fault_simulate",
    "simulate_fault",
]
