"""Hybrid pseudo-random + deterministic test generation.

The standard industrial flow the paper's BIST discussion alludes to:
blast cheap pseudo-random patterns first (an LFSR models the on-chip
PRPG), drop everything they detect with the bit-parallel fault
simulator, and spend PODEM effort only on the random-resistant faults.
The deterministic top-up cubes keep their X bits, so the hybrid's
output is still compression-friendly — only the targeted top-up
patterns ever cross the ATE interface in such a flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..bitstream import TernaryVector
from ..circuit.faults import collapse_faults
from ..circuit.netlist import Circuit
from ..circuit.scan import TestSet
from ..hardware.misr import LFSR, STANDARD_POLYNOMIALS
from .compact import compact_cubes
from .fastsim import CompiledView
from .podem import PodemEngine
from .ppsfp import parallel_fault_simulate

__all__ = ["HybridConfig", "HybridResult", "hybrid_generate"]


@dataclass(frozen=True)
class HybridConfig:
    """Knobs of the hybrid flow."""

    random_patterns: int = 256
    prpg_polynomial: int = STANDARD_POLYNOMIALS[16]
    prpg_seed: int = 0xACE1
    backtrack_limit: int = 100
    compact: bool = True

    def __post_init__(self) -> None:
        if self.random_patterns < 0:
            raise ValueError("random_patterns must be non-negative")
        if self.prpg_seed == 0:
            raise ValueError("an all-zero PRPG seed locks the LFSR up")


@dataclass(frozen=True)
class HybridResult:
    """Outcome of the hybrid flow.

    ``random_patterns`` is what BIST hardware would apply on-chip;
    ``top_up`` is the deterministic cube set the ATE must still download
    — the part the paper's compressor operates on.
    """

    random_patterns: List[TernaryVector]
    random_detected: int
    top_up: TestSet
    deterministic_detected: int
    untestable: int
    aborted: int
    total_faults: int

    @property
    def detected(self) -> int:
        """Faults covered by either phase."""
        return self.random_detected + self.deterministic_detected

    @property
    def coverage_percent(self) -> float:
        """Detected / (total - untestable)."""
        testable = self.total_faults - self.untestable
        return 100.0 * self.detected / testable if testable else 0.0

    @property
    def random_coverage_percent(self) -> float:
        """Coverage of the pseudo-random phase alone."""
        return (
            100.0 * self.random_detected / self.total_faults
            if self.total_faults
            else 0.0
        )


def prpg_patterns(
    width: int,
    count: int,
    polynomial: int,
    seed: int,
) -> List[TernaryVector]:
    """``count`` fully specified patterns from a serial PRPG.

    The LFSR output bit streams into a ``width``-bit scan chain, exactly
    as an on-chip PRPG would feed it: consecutive patterns are
    overlapping windows of the LFSR's bit sequence.
    """
    lfsr = LFSR(polynomial, seed=seed)
    bits = lfsr.sequence(width * count)
    patterns = []
    for p in range(count):
        value = 0
        for i in range(width):
            if bits[p * width + i]:
                value |= 1 << i
        patterns.append(TernaryVector.from_int(value, width))
    return patterns


def hybrid_generate(
    circuit: Circuit,
    config: Optional[HybridConfig] = None,
) -> HybridResult:
    """Run the pseudo-random phase, then PODEM on what survives."""
    config = config or HybridConfig()
    view = circuit.combinational_view()
    compiled = CompiledView(view)
    faults = collapse_faults(circuit)

    # Phase 1: pseudo-random patterns, bit-parallel simulation.
    patterns = prpg_patterns(
        view.width,
        config.random_patterns,
        config.prpg_polynomial,
        config.prpg_seed,
    )
    if patterns:
        random_report = parallel_fault_simulate(
            view, patterns, faults, compiled=compiled
        )
        survivors = random_report.undetected
        random_detected = len(random_report.detected)
    else:
        survivors = list(faults)
        random_detected = 0

    # Phase 2: deterministic top-up on the random-resistant faults.
    engine = PodemEngine(
        view, backtrack_limit=config.backtrack_limit, compiled=compiled
    )
    cubes: List[TernaryVector] = []
    detected = untestable = aborted = 0
    pending = list(survivors)
    while pending:
        fault = pending.pop(0)
        result = engine.generate(fault)
        if not result.detected:
            if result.status == "untestable":
                untestable += 1
            else:
                aborted += 1
            continue
        cube = result.cube
        assert cube is not None
        cubes.append(cube)
        detected += 1
        if pending:
            seed = compiled.cube_values(cube)
            good = compiled.evaluate(list(seed))
            still = []
            for other in pending:
                if compiled.detects(good, seed, compiled.compile_fault(other)):
                    detected += 1
                else:
                    still.append(other)
            pending = still

    if config.compact:
        cubes = compact_cubes(cubes)
    top_up = TestSet(view.test_inputs, cubes, name=f"{circuit.name}-topup")
    return HybridResult(
        random_patterns=patterns,
        random_detected=random_detected,
        top_up=top_up,
        deterministic_detected=detected,
        untestable=untestable,
        aborted=aborted,
        total_faults=len(faults),
    )
