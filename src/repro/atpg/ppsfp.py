"""Parallel-pattern single-fault propagation (PPSFP) fault simulation.

Serial fault simulation evaluates one vector against one fault at a
time; PPSFP packs a *batch* of fully specified vectors into the bit
positions of machine words and evaluates all of them with one pass of
bitwise operations — the classic industrial speedup, here over Python's
arbitrary-width integers so a batch can be any size.

Restricted to fully specified vectors (two-valued logic): that is
exactly the post-decompression situation, where the paper's flow needs
to confirm that the reconstructed vectors keep the silicon coverage.
For ternary cubes use :func:`repro.atpg.faultsim.fault_simulate`; the
test suite cross-checks both engines on X-free inputs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..bitstream import TernaryVector
from ..circuit.faults import Fault
from ..circuit.netlist import CombinationalView
from .fastsim import (
    CompiledView,
    _OP_AND,
    _OP_BUF,
    _OP_NAND,
    _OP_NOR,
    _OP_OR,
    _OP_XNOR,
    _OP_XOR,
)
from .faultsim import FaultSimReport

__all__ = ["parallel_fault_simulate", "pack_vectors"]


def pack_vectors(
    cv: CompiledView, vectors: Sequence[TernaryVector]
) -> List[int]:
    """Pack a batch of fully specified vectors into per-net word seeds.

    Bit ``v`` of net word ``i`` carries vector ``v``'s value on net
    ``i``; only source nets are seeded.
    """
    words = [0] * cv.n_nets
    for v, vector in enumerate(vectors):
        if not vector.is_fully_specified:
            raise ValueError(
                "PPSFP needs fully specified vectors; fill the X bits first"
            )
        if len(vector) != len(cv.input_indices):
            raise ValueError("vector width does not match the view")
        value = vector.value_mask
        for bit_pos, net in enumerate(cv.input_indices):
            if (value >> bit_pos) & 1:
                words[net] |= 1 << v
    return words


def _evaluate_packed(
    cv: CompiledView,
    words: List[int],
    mask: int,
    fault: Tuple[int, int, int, int] = None,
) -> List[int]:
    """Two-valued batch evaluation with optional fault forcing."""
    fnet = fstuck = fpos = fpin = -1
    if fault is not None:
        fnet, fstuck, fpos, fpin = fault
        if fpos == -1:
            words[fnet] = mask if fstuck else 0
    for pos, (out, op, fanins) in enumerate(cv.ops):
        if fault is not None and fpos == pos:
            vs = [
                (mask if fstuck else 0) if j == fpin else words[f]
                for j, f in enumerate(fanins)
            ]
        else:
            vs = [words[f] for f in fanins]
        if op == _OP_AND or op == _OP_NAND:
            r = mask
            for v in vs:
                r &= v
            if op == _OP_NAND:
                r = ~r & mask
        elif op == _OP_OR or op == _OP_NOR:
            r = 0
            for v in vs:
                r |= v
            if op == _OP_NOR:
                r = ~r & mask
        elif op == _OP_XOR or op == _OP_XNOR:
            r = 0
            for v in vs:
                r ^= v
            if op == _OP_XNOR:
                r = ~r & mask
        elif op == _OP_BUF:
            r = vs[0]
        else:  # _OP_NOT
            r = ~vs[0] & mask
        if fault is not None and fpos == -1 and out == fnet:
            r = mask if fstuck else 0
        words[out] = r
    return words


def parallel_fault_simulate(
    view: CombinationalView,
    vectors: Sequence[TernaryVector],
    faults: Iterable[Fault],
    batch_size: int = 64,
    compiled: CompiledView = None,
) -> FaultSimReport:
    """Batch fault simulation with fault dropping between batches.

    Semantically identical to the serial engine on fully specified
    vectors: a fault is detected iff some vector makes an observable
    output differ, and ``detected[fault]`` records the first such
    vector's index.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    cv = compiled or CompiledView(view)
    remaining = [(fault, cv.compile_fault(fault)) for fault in faults]
    detected: Dict[Fault, int] = {}

    for start in range(0, len(vectors), batch_size):
        if not remaining:
            break
        batch = vectors[start : start + batch_size]
        mask = (1 << len(batch)) - 1
        seeds = pack_vectors(cv, batch)
        good = _evaluate_packed(cv, list(seeds), mask)
        survivors = []
        for fault, packed in remaining:
            faulty = _evaluate_packed(cv, list(seeds), mask, packed)
            # Union over every output: the first detecting vector may
            # differ per output, and the serial engine's index is the
            # earliest across all of them.
            diff = 0
            for net in cv.output_indices:
                diff |= (good[net] ^ faulty[net]) & mask
            if diff:
                first = (diff & -diff).bit_length() - 1
                detected[fault] = start + first
            else:
                survivors.append((fault, packed))
        remaining = survivors
    return FaultSimReport(
        detected=detected, undetected=[f for f, _p in remaining]
    )
