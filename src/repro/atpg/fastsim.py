"""Index-compiled 3-valued simulation kernel.

:mod:`repro.circuit.simulate` is the readable reference simulator; ATPG
and serial fault simulation need the same semantics thousands of times
per circuit, so this module compiles a
:class:`~repro.circuit.netlist.CombinationalView` once into flat integer
arrays (net -> index, gates as ``(out, opcode, fanins)`` triples in
topological order) and evaluates with list indexing only.

Values are encoded ``0``, ``1`` and ``2`` (X); converters to and from
the reference ``0/1/None`` convention are provided, and a test
cross-checks both simulators gate-for-gate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..bitstream import TernaryVector
from ..circuit.faults import Fault
from ..circuit.netlist import CombinationalView, GateType

__all__ = ["X2", "CompiledView"]

#: The X value of the packed encoding.
X2 = 2

_OP_AND, _OP_NAND, _OP_OR, _OP_NOR, _OP_XOR, _OP_XNOR, _OP_BUF, _OP_NOT = range(8)

_OPCODES = {
    GateType.AND: _OP_AND,
    GateType.NAND: _OP_NAND,
    GateType.OR: _OP_OR,
    GateType.NOR: _OP_NOR,
    GateType.XOR: _OP_XOR,
    GateType.XNOR: _OP_XNOR,
    GateType.BUFF: _OP_BUF,
    GateType.NOT: _OP_NOT,
}

_NOT3 = (1, 0, 2)


class CompiledView:
    """A full-scan view compiled for fast repeated evaluation."""

    def __init__(self, view: CombinationalView) -> None:
        self.view = view
        circuit = view.circuit
        order = circuit.topological_order()
        self.net_index: Dict[str, int] = {name: i for i, name in enumerate(order)}
        self.net_names: List[str] = list(order)
        self.n_nets = len(order)

        self.input_indices: List[int] = [
            self.net_index[name] for name in view.test_inputs
        ]
        self.output_indices: List[int] = [
            self.net_index[name] for name in view.test_outputs
        ]
        # Gates in evaluation order: (out_index, opcode, fanin index tuple).
        self.ops: List[Tuple[int, int, Tuple[int, ...]]] = []
        for name in order:
            gate = circuit.gates[name]
            if gate.gate_type in (GateType.INPUT, GateType.DFF):
                continue
            self.ops.append(
                (
                    self.net_index[name],
                    _OPCODES[gate.gate_type],
                    tuple(self.net_index[f] for f in gate.fanins),
                )
            )
        # Fanout successors (op list positions) per net, for X-path walks.
        self.fanout_ops: List[List[int]] = [[] for _ in range(self.n_nets)]
        for pos, (_out, _op, fanins) in enumerate(self.ops):
            for f in fanins:
                self.fanout_ops[f].append(pos)

    # ------------------------------------------------------------------
    def compile_fault(self, fault: Fault) -> Tuple[int, int, int, int]:
        """Pack a fault as ``(net_index, stuck, branch_op_position, pin)``.

        ``branch_op_position`` is -1 for stem faults; otherwise the
        position in :attr:`ops` of the gate whose input pin ``pin`` is
        faulted.
        """
        net = self.net_index[fault.net]
        if fault.branch is None:
            return (net, fault.stuck, -1, -1)
        gate_name, pin = fault.branch
        out_idx = self.net_index[gate_name]
        for pos, (out, _op, _fanins) in enumerate(self.ops):
            if out == out_idx:
                return (net, fault.stuck, pos, pin)
        raise ValueError(f"fault {fault} names a non-combinational gate")

    def assignment_values(
        self, assignment: Dict[str, Optional[int]]
    ) -> List[int]:
        """Seed a value array from a name->0/1/None mapping."""
        values = [X2] * self.n_nets
        for name, v in assignment.items():
            if v is not None:
                values[self.net_index[name]] = v
        return values

    def cube_values(self, cube: TernaryVector) -> List[int]:
        """Seed a value array from a test cube (view input order)."""
        if len(cube) != len(self.input_indices):
            raise ValueError("cube width does not match the view")
        values = [X2] * self.n_nets
        for idx, bit in zip(self.input_indices, cube):
            if bit is not None:
                values[idx] = bit
        return values

    # ------------------------------------------------------------------
    def evaluate(
        self,
        values: List[int],
        fault: Optional[Tuple[int, int, int, int]] = None,
    ) -> List[int]:
        """Evaluate in place and return ``values`` (sources pre-seeded).

        ``fault`` is a packed fault from :meth:`compile_fault`.
        """
        fnet = fstuck = fpos = fpin = -1
        if fault is not None:
            fnet, fstuck, fpos, fpin = fault
            if fpos == -1:
                # Stem fault: force now so consumers of a faulty *source*
                # net see it; gate-output stems are re-forced in the loop.
                values[fnet] = fstuck
        for pos, (out, op, fanins) in enumerate(self.ops):
            if fault is not None and fpos == pos:
                vs = [
                    fstuck if j == fpin else values[f]
                    for j, f in enumerate(fanins)
                ]
            else:
                vs = [values[f] for f in fanins]
            if op == _OP_AND or op == _OP_NAND:
                r = 1
                for v in vs:
                    if v == 0:
                        r = 0
                        break
                    if v == X2:
                        r = X2
                if op == _OP_NAND:
                    r = _NOT3[r]
            elif op == _OP_OR or op == _OP_NOR:
                r = 0
                for v in vs:
                    if v == 1:
                        r = 1
                        break
                    if v == X2:
                        r = X2
                if op == _OP_NOR:
                    r = _NOT3[r]
            elif op == _OP_XOR or op == _OP_XNOR:
                r = 0
                for v in vs:
                    if v == X2:
                        r = X2
                        break
                    r ^= v
                if op == _OP_XNOR:
                    r = _NOT3[r]
            elif op == _OP_BUF:
                r = vs[0]
            else:  # _OP_NOT
                r = _NOT3[vs[0]]
            if fault is not None and fpos == -1 and out == fnet:
                r = fstuck
            values[out] = r
        return values

    def good_values(self, seeded: Sequence[int]) -> List[int]:
        """Evaluate the good machine from a seeded source array."""
        return self.evaluate(list(seeded))

    def detects(
        self,
        good: Sequence[int],
        seeded: Sequence[int],
        fault: Tuple[int, int, int, int],
    ) -> bool:
        """True when the faulty machine differs at an observable output."""
        faulty = self.evaluate(list(seeded), fault)
        for idx in self.output_indices:
            g, f = good[idx], faulty[idx]
            if g != X2 and f != X2 and g != f:
                return True
        return False
