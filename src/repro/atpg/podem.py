"""PODEM test generation for single stuck-at faults.

Classic PODEM (Goel, 1981) over the full-scan combinational view: all
value decisions are made at (pseudo) primary inputs, each decision is
followed by forward implication — two 3-valued simulations of the good
and faulty machines on the compiled kernel of
:mod:`repro.atpg.fastsim` — and the search backtracks on failure.

The produced *test cube* assigns only the inputs the proof needed;
everything else stays X.  Those X bits are precisely the don't-cares the
paper's compressor feeds on, so the ATPG path exercises the entire
pipeline on genuine data.

A SCOAP-like controllability estimate steers the backtrace; an X-path
check prunes branches whose fault effect can no longer reach an output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bitstream import TernaryVector
from ..circuit.faults import Fault
from ..circuit.netlist import CombinationalView
from .fastsim import X2, CompiledView, _OP_AND, _OP_NAND, _OP_NOR, _OP_OR

__all__ = ["PodemResult", "PodemEngine"]

#: Controlling input value per opcode (absent = no controlling value).
_CONTROLLING = {
    _OP_AND: 0,
    _OP_NAND: 0,
    _OP_OR: 1,
    _OP_NOR: 1,
}

#: Opcodes whose output inverts the driven polarity during backtrace.
_INVERTING_OPS = frozenset({1, 3, 5, 7})  # NAND, NOR, XNOR, NOT


@dataclass(frozen=True)
class PodemResult:
    """Outcome of one PODEM run."""

    fault: Fault
    status: str  # "detected" | "untestable" | "aborted"
    cube: Optional[TernaryVector]
    backtracks: int
    decisions: int

    @property
    def detected(self) -> bool:
        """True when a test cube was found."""
        return self.status == "detected"


class PodemEngine:
    """Reusable PODEM engine for one full-scan view."""

    def __init__(
        self,
        view: CombinationalView,
        backtrack_limit: int = 100,
        compiled: Optional[CompiledView] = None,
    ) -> None:
        if backtrack_limit < 1:
            raise ValueError("backtrack_limit must be >= 1")
        self.view = view
        self.backtrack_limit = backtrack_limit
        self.cv = compiled or CompiledView(view)
        cv = self.cv
        self._is_source = [True] * cv.n_nets
        self._gate_at: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
        for out, op, fanins in cv.ops:
            self._is_source[out] = False
            self._gate_at[out] = (op, fanins)
        self._cc = _scoap_controllability(cv)
        self._input_set = set(cv.input_indices)

    # ------------------------------------------------------------------
    def generate(self, fault: Fault) -> PodemResult:
        """Search for a test cube detecting ``fault``."""
        cv = self.cv
        pf = cv.compile_fault(fault)
        seed = [X2] * cv.n_nets
        # Decision stack: (net_index, value, tried_both).
        stack: List[Tuple[int, int, bool]] = []
        backtracks = 0
        decisions = 0

        while True:
            good = cv.evaluate(list(seed))
            faulty = cv.evaluate(list(seed), pf)
            if self._detected(good, faulty):
                return PodemResult(
                    fault, "detected", self._cube(seed), backtracks, decisions
                )
            objective = self._objective(pf, good, faulty)
            pi = None
            if objective is not None:
                pi, pi_value = self._backtrace(objective, good)
            if pi is not None:
                seed[pi] = pi_value
                stack.append((pi, pi_value, False))
                decisions += 1
                continue
            # Dead end: flip the most recent untried decision.
            backtracked = False
            while stack:
                net, value, tried_both = stack.pop()
                seed[net] = X2
                if not tried_both:
                    flipped = 1 - value
                    seed[net] = flipped
                    stack.append((net, flipped, True))
                    backtracks += 1
                    backtracked = True
                    break
            if not backtracked:
                return PodemResult(fault, "untestable", None, backtracks, decisions)
            if backtracks >= self.backtrack_limit:
                return PodemResult(fault, "aborted", None, backtracks, decisions)

    # ------------------------------------------------------------------
    def _detected(self, good: List[int], faulty: List[int]) -> bool:
        for idx in self.cv.output_indices:
            g, f = good[idx], faulty[idx]
            if g != X2 and f != X2 and g != f:
                return True
        return False

    def _cube(self, seed: List[int]) -> TernaryVector:
        return TernaryVector(
            (seed[i] if seed[i] != X2 else None) for i in self.cv.input_indices
        )

    def _objective(
        self,
        pf: Tuple[int, int, int, int],
        good: List[int],
        faulty: List[int],
    ) -> Optional[Tuple[int, int]]:
        """Next (net_index, value) goal, or None when the branch is hopeless."""
        fnet, fstuck, _fpos, _fpin = pf
        # 1. Activate: the fault site must carry the opposite value.
        site_good = good[fnet]
        if site_good == X2:
            return (fnet, 1 - fstuck)
        if site_good == fstuck:
            return None  # site pinned to the stuck value: cannot activate
        # 2. Propagate: drive a D-frontier gate.
        frontier = self._d_frontier(good, faulty, pf)
        if not frontier:
            return None
        reachable = self._x_reach(good, faulty)
        for pos in frontier:
            out, _op, _fanins = self.cv.ops[pos]
            if not reachable[out]:
                continue
            op, fanins = self._gate_at[out]
            control = _CONTROLLING.get(op)
            # Want every X side-input at the non-controlling value (for
            # XOR any defined value works; aim for 0).
            want = (1 - control) if control is not None else 0
            for f in fanins:
                if good[f] == X2:
                    return (f, want)
        return None

    def _d_frontier(
        self,
        good: List[int],
        faulty: List[int],
        pf: Tuple[int, int, int, int],
    ) -> List[int]:
        """Op positions with undetermined output but a fault effect at input.

        A branch fault shows no difference on the shared fanin net, only
        at the faulted pin, so that pin is checked against the forced
        value explicitly.
        """
        fnet, fstuck, fpos, fpin = pf
        frontier = []
        for pos, (out, _op, fanins) in enumerate(self.cv.ops):
            if good[out] != X2 and faulty[out] != X2:
                continue
            for j, f in enumerate(fanins):
                g, fl = good[f], faulty[f]
                if fpos == pos and j == fpin:
                    fl = fstuck
                if g != X2 and fl != X2 and g != fl:
                    frontier.append(pos)
                    break
        return frontier

    def _x_reach(self, good: List[int], faulty: List[int]) -> List[bool]:
        """Per-net flag: an undetermined path reaches an observable output.

        Net indices follow topological order, so one reverse sweep
        propagates reachability from the observables back to every net.
        """
        cv = self.cv
        reach = [False] * cv.n_nets
        observable = set(cv.output_indices)
        for net in range(cv.n_nets - 1, -1, -1):
            if good[net] != X2 and faulty[net] != X2:
                continue  # decided nets block the X path
            if net in observable:
                reach[net] = True
                continue
            for succ_pos in cv.fanout_ops[net]:
                if reach[cv.ops[succ_pos][0]]:
                    reach[net] = True
                    break
        return reach

    def _backtrace(
        self, objective: Tuple[int, int], good: List[int]
    ) -> Tuple[Optional[int], int]:
        """Walk the objective back to an unassigned input."""
        net, value = objective
        guard = 0
        limit = self.cv.n_nets + 1
        while True:
            guard += 1
            if guard > limit:
                return (None, 0)  # defensive: malformed traversal
            if self._is_source[net]:
                if good[net] != X2 or net not in self._input_set:
                    return (None, 0)
                return (net, value)
            op, fanins = self._gate_at[net]
            if op in _INVERTING_OPS:
                value = 1 - value
            # Choose the X fanin that is cheapest to set to ``value``.
            best = None
            best_cost = None
            for f in fanins:
                if good[f] != X2:
                    continue
                cost = self._cc[f][value]
                if best_cost is None or cost < best_cost:
                    best, best_cost = f, cost
            if best is None:
                return (None, 0)
            net = best


def _scoap_controllability(cv: CompiledView) -> List[Tuple[int, int]]:
    """SCOAP-style (CC0, CC1) per net index; sources cost 1."""
    from .fastsim import _OP_BUF, _OP_NOT, _OP_XNOR, _OP_XOR

    cc: List[Tuple[int, int]] = [(1, 1)] * cv.n_nets
    for out, op, fanins in cv.ops:
        fanin_cc = [cc[f] for f in fanins]
        if op == _OP_BUF:
            cc[out] = (fanin_cc[0][0] + 1, fanin_cc[0][1] + 1)
        elif op == _OP_NOT:
            cc[out] = (fanin_cc[0][1] + 1, fanin_cc[0][0] + 1)
        elif op in (_OP_AND, _OP_NAND):
            all1 = sum(c[1] for c in fanin_cc) + 1
            any0 = min(c[0] for c in fanin_cc) + 1
            cc[out] = (any0, all1) if op == _OP_AND else (all1, any0)
        elif op in (_OP_OR, _OP_NOR):
            all0 = sum(c[0] for c in fanin_cc) + 1
            any1 = min(c[1] for c in fanin_cc) + 1
            cc[out] = (any1, all0) if op == _OP_OR else (all0, any1)
        elif op in (_OP_XOR, _OP_XNOR):
            total = sum(min(c) for c in fanin_cc) + 1
            cc[out] = (total, total)
    return cc
