"""Serial stuck-at fault simulation with fault dropping.

For each candidate fault the faulty machine is re-simulated and compared
against the good machine at the observable outputs; a fault is detected
when some output is defined in both machines and differs.  Ternary cubes
simulate directly — an X input stays X, so detection claims are never
optimistic (exactly how a tester, which only measures specified
responses, would behave).

:func:`simulate_fault` is the readable single-fault check on the
reference simulator; :func:`fault_simulate` runs whole test sets on the
compiled kernel of :mod:`repro.atpg.fastsim`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..bitstream import TernaryVector
from ..circuit.faults import Fault
from ..circuit.netlist import CombinationalView
from ..circuit.simulate import Value, evaluate
from .fastsim import CompiledView

__all__ = ["FaultSimReport", "simulate_fault", "fault_simulate"]


@dataclass(frozen=True)
class FaultSimReport:
    """Detection outcome of one test set over one fault list."""

    detected: Dict[Fault, int]  # fault -> index of the first detecting cube
    undetected: List[Fault]

    @property
    def coverage(self) -> float:
        """Fraction of the fault list detected."""
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 0.0

    @property
    def coverage_percent(self) -> float:
        """Coverage in percent."""
        return 100.0 * self.coverage


def simulate_fault(
    view: CombinationalView,
    assignment: Dict[str, Value],
    good: Dict[str, Value],
    fault: Fault,
) -> bool:
    """True when ``fault`` is detected under the given input assignment.

    Reference-simulator path, kept for clarity and cross-checking; bulk
    work should go through :func:`fault_simulate`.
    """
    faulty = evaluate(view.circuit, assignment, fault)
    for name in view.test_outputs:
        g, f = good[name], faulty[name]
        if g is not None and f is not None and g != f:
            return True
    return False


def fault_simulate(
    view: CombinationalView,
    cubes: Sequence[TernaryVector],
    faults: Iterable[Fault],
    compiled: Optional[CompiledView] = None,
) -> FaultSimReport:
    """Run every cube against the fault list, dropping detected faults."""
    cv = compiled or CompiledView(view)
    remaining = [(fault, cv.compile_fault(fault)) for fault in faults]
    detected: Dict[Fault, int] = {}
    for index, cube in enumerate(cubes):
        if not remaining:
            break
        seed = cv.cube_values(cube)
        good = cv.evaluate(list(seed))
        still = []
        for fault, packed in remaining:
            if cv.detects(good, seed, packed):
                detected[fault] = index
            else:
                still.append((fault, packed))
        remaining = still
    return FaultSimReport(
        detected=detected, undetected=[f for f, _p in remaining]
    )
