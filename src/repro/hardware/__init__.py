"""Hardware decompressor: cycle model, embedded memory, timing, area,
RTL generation and ATE economics."""

from .area import AreaModel, AreaReport, estimate_area
from .decompressor import DecompressorModel, HardwareRunResult
from .economics import ATEProfile, EconomicsReport, evaluate_economics
from .memory import EmbeddedMemory, MemoryMode, MemoryRequirements
from .misr import (
    LFSR,
    MISR,
    STANDARD_POLYNOMIALS,
    aliasing_probability,
    signature_of_responses,
)
from .rtl import RTL_STATES, generate_decompressor, generate_testbench
from .timing import (
    DownloadReport,
    ParallelDownloadReport,
    analyze_download,
    analyze_parallel_chains,
    decode_cycles_per_code,
)

__all__ = [
    "ATEProfile",
    "AreaModel",
    "AreaReport",
    "DecompressorModel",
    "DownloadReport",
    "EconomicsReport",
    "EmbeddedMemory",
    "HardwareRunResult",
    "LFSR",
    "MISR",
    "MemoryMode",
    "MemoryRequirements",
    "ParallelDownloadReport",
    "RTL_STATES",
    "STANDARD_POLYNOMIALS",
    "aliasing_probability",
    "analyze_download",
    "analyze_parallel_chains",
    "decode_cycles_per_code",
    "estimate_area",
    "evaluate_economics",
    "generate_decompressor",
    "generate_testbench",
    "signature_of_responses",
]
