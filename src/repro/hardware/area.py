"""Area-overhead estimate for the decompression engine.

The paper argues the scheme is cheap because the dictionary reuses an
existing embedded memory; the remaining overhead is the Figure 5
datapath (shifters, muxes, the ``C_MLAST`` register, an incrementor)
plus the Figure 6 access muxes.  This module provides a coarse
gate-equivalent (GE, NAND2-equivalent) estimate so the engineering
trade-off benches can weigh compression gains against silicon cost.

The constants are the usual rule-of-thumb figures (a scannable flop
about 6 GE, a 2:1 mux bit about 3 GE, an adder bit about 7 GE); they
are estimates, clearly not sign-off numbers, and are exposed as
parameters for recalibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import LZWConfig
from .memory import MemoryRequirements

__all__ = ["AreaModel", "AreaReport", "estimate_area"]

_FLOP_GE = 6.0
_MUX_BIT_GE = 3.0
_ADDER_BIT_GE = 7.0
_COMPARATOR_BIT_GE = 2.5
_FSM_GE = 120.0  # small controller: state register + decode logic


@dataclass(frozen=True)
class AreaModel:
    """Technology constants for the estimate (NAND2 gate equivalents)."""

    flop_ge: float = _FLOP_GE
    mux_bit_ge: float = _MUX_BIT_GE
    adder_bit_ge: float = _ADDER_BIT_GE
    comparator_bit_ge: float = _COMPARATOR_BIT_GE
    fsm_ge: float = _FSM_GE


@dataclass(frozen=True)
class AreaReport:
    """Estimated overhead split into datapath and borrowed memory."""

    datapath_ge: float
    memory: MemoryRequirements
    memory_is_reused: bool

    @property
    def dedicated_memory_bits(self) -> int:
        """Memory bits that must be *added* (0 when a core memory is reused)."""
        return 0 if self.memory_is_reused else self.memory.total_bits


def estimate_area(
    config: LZWConfig,
    model: AreaModel = AreaModel(),
    memory_is_reused: bool = True,
) -> AreaReport:
    """Estimate the decompressor's gate overhead for ``config``.

    Datapath inventory, following Figure 5:

    * input shifter: ``C_E`` flops,
    * output shifter + its data-merging mux: ``C_C`` flops + muxes,
    * ``C_MLAST`` register (previous code's string): ``C_MDATA`` flops,
    * ``C_MLEN`` incrementor and next-code counter: adders/flops on
      ``ceil(log2(C_MDATA+1))`` and ``C_E`` bits,
    * memory data-merging mux across the word width,
    * dictionary-bound comparators (capacity and entry width),
    * the controlling FSM.
    """
    mem = MemoryRequirements.for_config(config)
    ce = config.code_bits
    cc = config.char_bits
    mlen = mem.mlen_bits

    flops = ce + cc + config.entry_bits + mlen + ce  # shifters, C_MLAST, counters
    mux_bits = cc + mem.word_bits  # output-shifter mux + memory write mux
    adder_bits = mlen + ce  # length incrementor + next-code counter
    comparator_bits = ce + mlen  # dictionary-full and entry-width checks

    datapath = (
        flops * model.flop_ge
        + mux_bits * model.mux_bit_ge
        + adder_bits * model.adder_bit_ge
        + comparator_bits * model.comparator_bit_ge
        + model.fsm_ge
    )
    return AreaReport(
        datapath_ge=datapath,
        memory=mem,
        memory_is_reused=memory_is_reused,
    )
