"""ATE test-economics model (the paper's motivation, reference [1]).

The introduction argues the scheme pays for itself twice on the tester:
the compressed patterns need less **vector memory** (ATE memory depth
prices the machine) and less **test time** (throughput prices the test
floor).  This module turns a compression result into those two numbers
plus a simple multi-site cost figure, so the benches can report the
economic shape, not just ratios.

The cost model is deliberately simple and fully parameterised: a tester
second costs ``cost_per_second``; a vector-memory overflow forces a
reload costing ``reload_seconds``.  Defaults are round numbers in the
range the test-economics literature quotes; they are inputs, not claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import CompressedStream
from .timing import analyze_download

__all__ = ["ATEProfile", "EconomicsReport", "evaluate_economics"]


@dataclass(frozen=True)
class ATEProfile:
    """The tester the test program must fit."""

    clock_hz: float = 25e6  # tester cycle rate
    vector_memory_bits: int = 16 * 1024 * 1024  # per-pin pattern depth
    cost_per_second: float = 0.03  # amortised $/tester-second
    reload_seconds: float = 2.0  # pattern reload on memory overflow
    sites: int = 1  # parallel-site multiplier

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.cost_per_second < 0:
            raise ValueError("clock_hz must be positive, cost non-negative")
        if self.vector_memory_bits < 1 or self.sites < 1:
            raise ValueError("vector_memory_bits and sites must be >= 1")


@dataclass(frozen=True)
class EconomicsReport:
    """Tester memory/time/cost, uncompressed vs compressed."""

    uncompressed_bits: int
    compressed_bits: int
    uncompressed_seconds: float
    compressed_seconds: float
    uncompressed_reloads: int
    compressed_reloads: int
    cost_uncompressed: float
    cost_compressed: float

    @property
    def memory_saving_percent(self) -> float:
        """Vector-memory reduction in percent."""
        if self.uncompressed_bits == 0:
            return 0.0
        return 100.0 * (1 - self.compressed_bits / self.uncompressed_bits)

    @property
    def time_saving_percent(self) -> float:
        """Test-time reduction in percent (includes reload penalties)."""
        if self.uncompressed_seconds == 0:
            return 0.0
        return 100.0 * (1 - self.compressed_seconds / self.uncompressed_seconds)

    @property
    def cost_saving_percent(self) -> float:
        """Cost reduction in percent."""
        if self.cost_uncompressed == 0:
            return 0.0
        return 100.0 * (1 - self.cost_compressed / self.cost_uncompressed)


def evaluate_economics(
    compressed: CompressedStream,
    profile: ATEProfile = ATEProfile(),
    clock_ratio: int = 10,
    double_buffered: bool = False,
) -> EconomicsReport:
    """Price one test set on one tester, with and without the scheme."""
    report = analyze_download(
        compressed, clock_ratio, double_buffered=double_buffered
    )
    un_bits = compressed.original_bits
    co_bits = compressed.compressed_bits

    un_reloads = _reloads(un_bits, profile.vector_memory_bits)
    co_reloads = _reloads(co_bits, profile.vector_memory_bits)

    un_seconds = (
        un_bits / profile.clock_hz + un_reloads * profile.reload_seconds
    )
    co_seconds = (
        report.tester_cycles / profile.clock_hz
        + co_reloads * profile.reload_seconds
    )
    # Multi-site: one tester applies `sites` devices in parallel, so the
    # per-device cost divides by the site count for both flows.
    per_device = profile.cost_per_second / profile.sites
    return EconomicsReport(
        uncompressed_bits=un_bits,
        compressed_bits=co_bits,
        uncompressed_seconds=un_seconds,
        compressed_seconds=co_seconds,
        uncompressed_reloads=un_reloads,
        compressed_reloads=co_reloads,
        cost_uncompressed=un_seconds * per_device,
        cost_compressed=co_seconds * per_device,
    )


def _reloads(bits: int, capacity: int) -> int:
    """Pattern reloads needed beyond the first memory fill."""
    if bits <= capacity:
        return 0
    return (bits - 1) // capacity
