"""Cycle-accurate model of the Figure 5 hardware decompressor.

The model is *bit-accurate* (it maintains the dictionary in an
:class:`~repro.hardware.memory.EmbeddedMemory` and reproduces the exact
scan stream — the tests cross-check it against the software decoder)
and *cycle-counted* under the paper's two-clock-domain regime:

* the ATE shifts one compressed bit per **tester** cycle;
* the engine (FSM, memory, output shifter) runs on the **internal**
  clock, ``clock_ratio`` times faster.

The baseline architecture is **serial**, matching the paper's Table 2
numbers: the input shifter must fill with all ``C_E`` bits before the
FSM decodes, and the tester stalls while the engine emits — so the
download-time improvement approaches the compression ratio minus
``1/clock_ratio``.  Setting ``double_buffered=True`` models the natural
extension where the next code downloads while the current one decodes.

Per-code internal-cycle cost:

* ``lookup_cycles`` — one memory read (or the base-code pass-through),
* one cycle per emitted scan bit (the output shifter feeds the chain),
* ``write_cycles`` — storing the newly created entry, when one is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..bitstream import BitReader, TernaryVector
from ..core import LZWConfig
from .memory import EmbeddedMemory, MemoryMode, MemoryRequirements

__all__ = ["HardwareRunResult", "DecompressorModel"]


@dataclass(frozen=True)
class HardwareRunResult:
    """Outcome of one hardware decompression run."""

    scan_stream: TernaryVector
    codes_processed: int
    internal_cycles: int
    tester_cycles: int
    clock_ratio: int
    memory_reads: int
    memory_writes: int

    def improvement_percent(self, baseline_tester_cycles: int) -> float:
        """Download-time improvement vs shifting the test uncompressed.

        ``baseline_tester_cycles`` is the uncompressed download time —
        one tester cycle per scan bit.
        """
        if baseline_tester_cycles <= 0:
            raise ValueError("baseline_tester_cycles must be positive")
        return 100.0 * (1.0 - self.tester_cycles / baseline_tester_cycles)


class DecompressorModel:
    """Executable model of the LZW decompression engine."""

    def __init__(
        self,
        config: LZWConfig,
        clock_ratio: int = 10,
        lookup_cycles: int = 1,
        write_cycles: int = 1,
        double_buffered: bool = False,
        memory: Optional[EmbeddedMemory] = None,
    ) -> None:
        if clock_ratio < 1:
            raise ValueError("clock_ratio must be >= 1")
        if lookup_cycles < 0 or write_cycles < 0:
            raise ValueError("cycle costs must be non-negative")
        self.config = config
        self.clock_ratio = clock_ratio
        self.lookup_cycles = lookup_cycles
        self.write_cycles = write_cycles
        self.double_buffered = double_buffered
        self.memory = memory or EmbeddedMemory(MemoryRequirements.for_config(config))

    # ------------------------------------------------------------------
    def run(self, bits: List[int], original_bits: int) -> HardwareRunResult:
        """Decompress a serialised code stream, counting cycles.

        ``bits`` is the output of :meth:`CompressedStream.to_bits`;
        ``original_bits`` truncates the final padded character exactly as
        the real chain would stop its scan clock.
        """
        cfg = self.config
        k = self.clock_ratio
        self.memory.grant(MemoryMode.LZW)

        reader = BitReader(bits)
        codes: List[int] = []
        while reader.remaining >= cfg.code_bits:
            codes.append(reader.read(cfg.code_bits))
        if reader.remaining:
            raise ValueError("compressed stream is not a whole number of codes")

        n_base = cfg.base_codes
        max_chars = cfg.max_entry_chars
        char_bits = cfg.char_bits
        next_code = n_base
        out_bits: List[int] = []
        prev: Optional[Tuple[int, ...]] = None

        download_done = 0  # internal time the current code is fully loaded
        engine_free = 0  # internal time the engine finishes the previous code
        shifter_free = 0  # internal time the input shifter can start refilling

        for index, code in enumerate(codes):
            # --- input shifter -----------------------------------------
            if self.double_buffered:
                # The shifter refills while the engine works; it empties
                # into the engine as soon as both are ready.
                load_start = -(-shifter_free // k) * k
                download_done = load_start + cfg.code_bits * k
                start = max(download_done, engine_free)
                shifter_free = start
            else:
                # Serial: downloading resumes only once the engine idles,
                # aligned to the next tester edge.
                resume = max(download_done, engine_free)
                aligned = -(-resume // k) * k
                download_done = aligned + cfg.code_bits * k
                start = download_done

            # --- FSM decode ---------------------------------------------
            will_add = prev is not None and (
                next_code < cfg.dict_size and len(prev) + 1 <= max_chars
            )
            if cfg.reset_on_full and will_add and next_code == cfg.dict_size - 1:
                # Adaptive variant: flush by resetting the allocation
                # pointer; stale memory words are never addressed again.
                next_code = n_base
                will_add = False
            if code < n_base:
                current = (code,)
                cycles = self.lookup_cycles  # pass-through mux decision
            elif code < next_code:
                length_bits, data = self.memory.read(code)
                current = _unpack_chars(data, length_bits, char_bits)
                cycles = self.lookup_cycles
            elif code == next_code and will_add:
                # Figure 4f: the code names the entry being created.
                assert prev is not None
                current = prev + (prev[0],)
                cycles = self.lookup_cycles
            else:
                raise ValueError(
                    f"code {code} (position {index}) not decodable: "
                    f"next free entry is {next_code}"
                )

            # --- dictionary write (mirrors the encoder's allocation) ----
            if will_add:
                assert prev is not None
                entry = prev + (current[0],)
                self.memory.write(
                    next_code,
                    len(entry) * char_bits,
                    _pack_chars(entry, char_bits),
                )
                next_code += 1
                cycles += self.write_cycles

            # --- output shifter: one scan bit per internal cycle --------
            cycles += len(current) * char_bits
            for char in current:
                for b in range(char_bits):
                    out_bits.append((char >> b) & 1)

            engine_free = start + cycles
            prev = current

        total_internal = max(engine_free, download_done)
        tester_cycles = -(-total_internal // k)
        stream = _bits_to_vector(out_bits)[:original_bits]
        if len(stream) < original_bits:
            raise ValueError(
                f"decompressed only {len(stream)} of {original_bits} scan bits"
            )
        return HardwareRunResult(
            scan_stream=stream,
            codes_processed=len(codes),
            internal_cycles=total_internal,
            tester_cycles=tester_cycles,
            clock_ratio=k,
            memory_reads=self.memory.reads,
            memory_writes=self.memory.writes,
        )


def _pack_chars(chars: Tuple[int, ...], char_bits: int) -> int:
    data = 0
    for i, c in enumerate(chars):
        data |= c << (i * char_bits)
    return data


def _unpack_chars(data: int, length_bits: int, char_bits: int) -> Tuple[int, ...]:
    if length_bits % char_bits:
        raise ValueError("stored entry length is not a whole number of characters")
    mask = (1 << char_bits) - 1
    return tuple(
        (data >> (i * char_bits)) & mask for i in range(length_bits // char_bits)
    )


def _bits_to_vector(bits: List[int]) -> TernaryVector:
    value = 0
    for i, b in enumerate(bits):
        if b:
            value |= 1 << i
    return TernaryVector.from_int(value, len(bits))
