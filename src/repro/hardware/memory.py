"""Embedded-memory model (the paper's Figure 6).

The decompressor reuses an existing on-chip memory as its dictionary:
``N`` words, each holding a length field ``C_MLEN`` and up to ``C_MDATA``
data bits.  The surrounding BIST-style muxing is modelled as an access
mode — reads and writes are only legal once the memory is granted to
the LZW engine, mirroring how the added muxes isolate production logic.

Word layout (matching the paper's sizing example: ``C_MDATA = 483``
needs a 492-bit word, i.e. a 9-bit length field):

* ``mlen_bits  = ceil(log2(C_MDATA + 1))`` — uncompressed length in bits,
* ``C_MDATA``  data bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from ..core import LZWConfig

__all__ = ["MemoryMode", "MemoryRequirements", "EmbeddedMemory"]


class MemoryMode(Enum):
    """Who currently owns the memory port (Figure 6's mux selects)."""

    NORMAL = "normal"
    BIST = "bist"
    LZW = "lzw"


@dataclass(frozen=True)
class MemoryRequirements:
    """Physical sizing of the dictionary memory for a given configuration."""

    words: int
    mlen_bits: int
    data_bits: int

    @property
    def word_bits(self) -> int:
        """Width of one memory word."""
        return self.mlen_bits + self.data_bits

    @property
    def total_bits(self) -> int:
        """Total storage the decompressor borrows from the core."""
        return self.words * self.word_bits

    @property
    def geometry(self) -> str:
        """Human-readable ``words x width`` form used in Table 2."""
        return f"{self.words}x{self.word_bits}"

    @classmethod
    def for_config(cls, config: LZWConfig) -> "MemoryRequirements":
        """Memory needed by the Figure 5 decompressor for ``config``.

        One word per dictionary code, as in the paper's ``N``-entry
        layout; base codes pass through the output mux and need no
        storage, but the address space is sized by ``N`` so the word
        count follows the dictionary size.
        """
        mlen_bits = max(1, (config.entry_bits).bit_length())
        return cls(
            words=config.dict_size,
            mlen_bits=mlen_bits,
            data_bits=config.entry_bits,
        )


class EmbeddedMemory:
    """Word-addressable dictionary memory with mode-gated access.

    Each word stores ``(length_in_bits, data_int)``; ``data_int`` packs
    the uncompressed characters LSB-first in stream order, consistent
    with :class:`repro.bitstream.TernaryVector` conventions.
    """

    def __init__(self, requirements: MemoryRequirements) -> None:
        self.requirements = requirements
        self._words: List[Optional[Tuple[int, int]]] = [None] * requirements.words
        self._mode = MemoryMode.NORMAL
        self.reads = 0
        self.writes = 0

    @property
    def mode(self) -> MemoryMode:
        """Current owner of the memory port."""
        return self._mode

    def grant(self, mode: MemoryMode) -> None:
        """Switch the Figure 6 muxes (e.g. hand the port to the LZW engine)."""
        self._mode = mode

    def read(self, address: int) -> Tuple[int, int]:
        """Return ``(length_bits, data)`` at ``address`` (LZW mode only)."""
        self._check_access(address)
        word = self._words[address]
        if word is None:
            raise ValueError(f"read of unwritten dictionary word {address}")
        self.reads += 1
        return word

    def write(self, address: int, length_bits: int, data: int) -> None:
        """Store an entry (LZW mode only); enforces field widths."""
        self._check_access(address)
        if not 0 <= length_bits <= self.requirements.data_bits:
            raise ValueError(
                f"entry length {length_bits} exceeds C_MDATA "
                f"{self.requirements.data_bits}"
            )
        if data >> self.requirements.data_bits:
            raise ValueError("entry data wider than the memory word")
        self.writes += 1
        self._words[address] = (length_bits, data)

    def occupancy(self) -> int:
        """Number of words holding dictionary entries."""
        return sum(1 for w in self._words if w is not None)

    def _check_access(self, address: int) -> None:
        if self._mode is not MemoryMode.LZW:
            raise PermissionError(
                "memory not granted to the LZW engine (Figure 6 mux select)"
            )
        if not 0 <= address < self.requirements.words:
            raise IndexError(f"address {address} outside {self.requirements.words} words")
