"""Closed-form download-time analysis (Tables 2 and 6).

The cycle-accurate model in :mod:`repro.hardware.decompressor` walks
every internal cycle; for parameter sweeps that is overkill, so this
module computes the same quantities analytically from the per-code
expansion lengths recorded by the encoder.  The tests assert that the
two agree.

Uncompressed baseline: the ATE shifts one scan bit per tester cycle, so
``T_uncomp = original_bits`` tester cycles.  Compressed, under the
serial architecture, each code costs its ``C_E`` download cycles plus
the engine time (lookup + one internal cycle per scan bit + write) paid
at ``1/clock_ratio`` tester cycles each — which is why the improvement
approaches ``ratio - 1/clock_ratio`` for large clock ratios, the shape
of the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core import CompressedStream
from .memory import MemoryRequirements

__all__ = [
    "DownloadReport",
    "ParallelDownloadReport",
    "analyze_download",
    "analyze_parallel_chains",
    "decode_cycles_per_code",
]


@dataclass(frozen=True)
class DownloadReport:
    """Download-time comparison for one compressed test set."""

    original_bits: int
    compressed_bits: int
    clock_ratio: int
    tester_cycles: int
    internal_decode_cycles: int
    double_buffered: bool
    memory: MemoryRequirements

    @property
    def baseline_tester_cycles(self) -> int:
        """Uncompressed download time (one bit per tester cycle)."""
        return self.original_bits

    @property
    def improvement(self) -> float:
        """Fractional download-time reduction vs the uncompressed test."""
        if self.original_bits == 0:
            return 0.0
        return 1.0 - self.tester_cycles / self.original_bits

    @property
    def improvement_percent(self) -> float:
        """Improvement in percent (Table 2 / Table 6 unit)."""
        return 100.0 * self.improvement


def decode_cycles_per_code(
    compressed: CompressedStream,
    lookup_cycles: int = 1,
    write_cycles: int = 1,
) -> List[int]:
    """Internal engine cycles each code costs, mirroring the hardware FSM.

    Requires ``compressed.expansion_chars`` (recorded by the encoder).
    The dictionary-write cycle is charged on the code *after* which an
    entry is allocated — i.e. every code except the first, while the
    dictionary has room and the previous expansion still fits the word.
    """
    cfg = compressed.config
    if compressed.codes and not compressed.expansion_chars:
        raise ValueError("expansion_chars missing; re-encode to use the analysis")
    cycles: List[int] = []
    next_code = cfg.base_codes
    prev_chars = None
    for chars in compressed.expansion_chars:
        cost = lookup_cycles + chars * cfg.char_bits
        will_add = prev_chars is not None and (
            next_code < cfg.dict_size and prev_chars + 1 <= cfg.max_entry_chars
        )
        if cfg.reset_on_full and will_add and next_code == cfg.dict_size - 1:
            next_code = cfg.base_codes  # adaptive flush: pointer reset only
            will_add = False
        if will_add:
            cost += write_cycles
            next_code += 1
        cycles.append(cost)
        prev_chars = chars
    return cycles


def analyze_download(
    compressed: CompressedStream,
    clock_ratio: int,
    lookup_cycles: int = 1,
    write_cycles: int = 1,
    double_buffered: bool = False,
) -> DownloadReport:
    """Tester-cycle count for downloading and expanding a compressed test."""
    if clock_ratio < 1:
        raise ValueError("clock_ratio must be >= 1")
    cfg = compressed.config
    k = clock_ratio
    per_code = decode_cycles_per_code(compressed, lookup_cycles, write_cycles)

    if double_buffered:
        # Download of code i+1 overlaps decode of code i: the shifter
        # refills as soon as the engine accepts the previous code, so the
        # steady-state cost per code is max(download, decode).
        engine_free = 0
        shifter_free = 0
        for cost in per_code:
            load_start = -(-shifter_free // k) * k
            download_done = load_start + cfg.code_bits * k
            start = max(download_done, engine_free)
            shifter_free = start
            engine_free = start + cost
        tester_cycles = -(-engine_free // k)
    else:
        # Serial: the engine idles during download and the tester stalls
        # during decode; each code starts aligned to a tester edge.
        t = 0
        for cost in per_code:
            t = -(-t // k) * k  # wait for the next tester edge
            t += cfg.code_bits * k + cost
        tester_cycles = -(-t // k)

    return DownloadReport(
        original_bits=compressed.original_bits,
        compressed_bits=compressed.compressed_bits,
        clock_ratio=k,
        tester_cycles=tester_cycles,
        internal_decode_cycles=sum(per_code),
        double_buffered=double_buffered,
        memory=MemoryRequirements.for_config(cfg),
    )


@dataclass(frozen=True)
class ParallelDownloadReport:
    """Download timing for per-chain engines on parallel tester channels.

    With one channel and one decompressor per chain, both the compressed
    and the uncompressed flows finish when their *slowest* chain does.
    """

    per_chain: List[DownloadReport]

    @property
    def tester_cycles(self) -> int:
        """Cycles until the slowest chain is fully loaded."""
        return max((r.tester_cycles for r in self.per_chain), default=0)

    @property
    def baseline_tester_cycles(self) -> int:
        """Uncompressed parallel download: the longest chain's stream."""
        return max((r.original_bits for r in self.per_chain), default=0)

    @property
    def improvement(self) -> float:
        """Fractional download-time reduction vs uncompressed multiscan."""
        baseline = self.baseline_tester_cycles
        if baseline == 0:
            return 0.0
        return 1.0 - self.tester_cycles / baseline

    @property
    def improvement_percent(self) -> float:
        """Improvement in percent."""
        return 100.0 * self.improvement

    @property
    def total_memory_bits(self) -> int:
        """Dictionary memory across every per-chain engine."""
        return sum(r.memory.total_bits for r in self.per_chain)


def analyze_parallel_chains(
    streams: Sequence[CompressedStream],
    clock_ratio: int,
    lookup_cycles: int = 1,
    write_cycles: int = 1,
    double_buffered: bool = False,
) -> ParallelDownloadReport:
    """Timing for the per-chain multiscan arrangement.

    ``streams`` are the per-chain compressed streams (e.g. from
    :func:`repro.core.multichain.compress_per_chain` results); each chain
    gets its own engine and tester channel, so the report maximises over
    chains rather than summing.
    """
    reports = [
        analyze_download(
            s,
            clock_ratio,
            lookup_cycles=lookup_cycles,
            write_cycles=write_cycles,
            double_buffered=double_buffered,
        )
        for s in streams
    ]
    return ParallelDownloadReport(per_chain=reports)
