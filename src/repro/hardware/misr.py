"""MISR response compaction (the scan-out side of Figure 2).

The paper compresses the *input* side; on the output side, production
flows compact the scan-out responses into a multiple-input signature
register so the ATE compares one signature instead of storing expected
responses.  This module provides the standard LFSR machinery:

* :class:`LFSR` — Galois-form linear feedback shift register over the
  given characteristic polynomial (also usable as a PRPG);
* :class:`MISR` — the multiple-input variant that XORs one response
  slice per clock into the state;
* :func:`signature_of_responses` — signature of a full test's output
  stream, with X-masking: unknown response bits must be forced to a
  known value before compaction (the classic X-blocking requirement),
  so ternary responses take an explicit mask policy;
* :func:`aliasing_probability` — the textbook ``2**-n`` estimate.

Polynomials are given as integer bit masks including both end terms,
e.g. ``0b10011`` for ``x^4 + x + 1``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..bitstream import TernaryVector

__all__ = [
    "STANDARD_POLYNOMIALS",
    "LFSR",
    "MISR",
    "signature_of_responses",
    "aliasing_probability",
]

#: Primitive polynomials per width (maximal-length), small standard set.
STANDARD_POLYNOMIALS = {
    4: 0b10011,  # x^4 + x + 1
    8: 0b100011101,  # x^8 + x^4 + x^3 + x^2 + 1
    16: 0b10001000000001011,  # x^16 + x^12 + x^3 + x + 1
    32: 0b100000000001000001000100010000111,
}


class LFSR:
    """Galois-configuration linear feedback shift register."""

    def __init__(self, polynomial: int, seed: int = 1) -> None:
        if polynomial < 0b11 or not polynomial & 1:
            raise ValueError(
                "polynomial must include the x^0 term and a degree >= 1"
            )
        self.polynomial = polynomial
        self.width = polynomial.bit_length() - 1
        self._mask = (1 << self.width) - 1
        if not 0 <= seed <= self._mask:
            raise ValueError(f"seed must fit in {self.width} bits")
        self.state = seed

    def step(self, feed: int = 0) -> int:
        """One clock: shift, apply feedback taps, XOR in ``feed``."""
        if feed >> self.width:
            raise ValueError("feed value wider than the register")
        msb = (self.state >> (self.width - 1)) & 1
        self.state = (self.state << 1) & self._mask
        if msb:
            self.state ^= self.polynomial & self._mask
        self.state ^= feed
        return self.state

    def run(self, cycles: int) -> int:
        """Free-run ``cycles`` clocks (PRPG use); returns the state."""
        for _ in range(cycles):
            self.step()
        return self.state

    def sequence(self, cycles: int) -> List[int]:
        """MSB output stream over ``cycles`` clocks (pseudo-random bits)."""
        out = []
        for _ in range(cycles):
            out.append((self.state >> (self.width - 1)) & 1)
            self.step()
        return out

    def period(self, limit: int = 1 << 20) -> int:
        """Cycle length from the current state (maximal = 2^width - 1)."""
        start = self.state
        if start == 0:
            return 1  # the all-zero lock-up state
        count = 0
        while count < limit:
            self.step()
            count += 1
            if self.state == start:
                return count
        raise RuntimeError("period exceeds the search limit")


class MISR(LFSR):
    """Multiple-input signature register."""

    def absorb(self, response: int) -> int:
        """Compact one parallel response slice into the signature."""
        return self.step(feed=response & self._mask)

    def signature(self) -> int:
        """The current signature."""
        return self.state


def signature_of_responses(
    responses: Iterable[TernaryVector],
    polynomial: Optional[int] = None,
    seed: int = 1,
    x_fill: int = 0,
) -> int:
    """Signature of a sequence of (possibly ternary) response slices.

    Unknown (X) response bits alias the signature in real silicon, so
    they must be blocked; here they are forced to ``x_fill`` — the
    modelling equivalent of an X-masking cell on the compactor inputs.
    All slices must share one width, which also fixes the MISR width
    when ``polynomial`` is omitted (requires a standard width).
    """
    responses = list(responses)
    if not responses:
        raise ValueError("need at least one response slice")
    width = len(responses[0])
    if polynomial is None:
        try:
            polynomial = STANDARD_POLYNOMIALS[width]
        except KeyError:
            raise ValueError(
                f"no standard polynomial for width {width}; pass one"
            ) from None
    misr = MISR(polynomial, seed=seed)
    if misr.width < width:
        raise ValueError(
            f"MISR width {misr.width} narrower than responses ({width})"
        )
    for slice_ in responses:
        if len(slice_) != width:
            raise ValueError("response slices must share one width")
        misr.absorb(slice_.fill(x_fill).to_int())
    return misr.signature()


def aliasing_probability(width: int) -> float:
    """Steady-state aliasing estimate for an ``width``-bit MISR."""
    if width < 1:
        raise ValueError("width must be >= 1")
    return 2.0 ** -width
